package tile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"slices"
	"sort"
)

// Binary wire codec for single tiles — the hot-path alternative to the
// JSON rendering on /tile. Grids travel as raw little-endian float64 bits,
// so NaN cells need no special casing (JSON spells them null) and decoding
// is a straight copy. Layout (all integers little-endian):
//
//	magic "FCT1" (the trailing digit is the format version)
//	| sections: id u32 | length u32 | payload
//	| crc32 (IEEE) u32 over everything before it
//
// Sections:
//
//	header (id 1): level u32 | y u32 | x u32 | size u32 | nattrs u32
//	               | per attr: len u32 | UTF-8 bytes
//	data   (id 2): nattrs × size² float64 raw bits
//	sigs   (id 3): nsigs u32 | per signature, name-sorted: name len u32
//	               | name | vec len u32 | values f64; the section is
//	               omitted entirely when the tile has no signatures
//
// Readers skip unknown section ids (a newer writer may add sections) and
// reject duplicates, out-of-bound dimensions, non-canonical shapes and
// checksum mismatches — the same hardening posture as the pyramid file
// format in io.go, whose bounds this codec shares.

const (
	// BinaryContentType is the HTTP media type the /tile endpoint and the
	// Go client negotiate to select this codec over JSON.
	BinaryContentType = "application/x-forecache-tile"

	binaryMagic = "FCT1"

	secHeader     = 1
	secData       = 2
	secSignatures = 3

	maxBinaryAttrs  = 1 << 12
	maxBinaryString = 1 << 20
	maxBinarySigs   = 64
	maxBinarySigLen = 1 << 20
	maxBinaryLevel  = 24
)

// EncodeBinary renders t in the binary wire format.
func EncodeBinary(t *Tile) ([]byte, error) {
	return AppendBinary(nil, t)
}

// AppendBinary appends the binary encoding of t to dst and returns the
// extended slice. The exact output size is computed up front, so encoding
// into a nil dst costs a single allocation. Tiles outside the format's
// bounds (or with grids that don't match Size/Attrs, which the implied
// section lengths could not represent) are rejected so an encoded payload
// always decodes back.
func AppendBinary(dst []byte, t *Tile) ([]byte, error) {
	if t.Size <= 0 || t.Size > maxTileSize {
		return nil, fmt.Errorf("tile %s: size %d outside the codec's (0, %d] bound", t.Coord, t.Size, maxTileSize)
	}
	if !binaryCoordValid(t.Coord) {
		return nil, fmt.Errorf("tile: coordinate %s outside the codec's bounds", t.Coord)
	}
	if len(t.Attrs) > maxBinaryAttrs {
		return nil, fmt.Errorf("tile %s: %d attributes over the codec's %d bound", t.Coord, len(t.Attrs), maxBinaryAttrs)
	}
	if len(t.Data) != len(t.Attrs) {
		return nil, fmt.Errorf("tile %s: %d grids for %d attributes", t.Coord, len(t.Data), len(t.Attrs))
	}
	cells := t.Size * t.Size
	headerLen := 5 * 4
	for _, a := range t.Attrs {
		if len(a) > maxBinaryString {
			return nil, fmt.Errorf("tile %s: attribute name of %d bytes over the codec's %d bound", t.Coord, len(a), maxBinaryString)
		}
		headerLen += 4 + len(a)
	}
	for i, g := range t.Data {
		if len(g) != cells {
			return nil, fmt.Errorf("tile %s: grid %q has %d cells, want %d", t.Coord, t.Attrs[i], len(g), cells)
		}
	}
	dataLen := uint64(len(t.Attrs)) * uint64(cells) * 8
	if dataLen > math.MaxUint32 {
		return nil, fmt.Errorf("tile %s: %d-byte data section overflows the format", t.Coord, dataLen)
	}
	sigLen := 0
	var names []string
	if len(t.Signatures) > 0 {
		if len(t.Signatures) > maxBinarySigs {
			return nil, fmt.Errorf("tile %s: %d signatures over the codec's %d bound", t.Coord, len(t.Signatures), maxBinarySigs)
		}
		names = make([]string, 0, len(t.Signatures))
		sigLen = 4
		for name, vec := range t.Signatures {
			if len(name) > maxBinaryString {
				return nil, fmt.Errorf("tile %s: signature name of %d bytes over the codec's %d bound", t.Coord, len(name), maxBinaryString)
			}
			if len(vec) > maxBinarySigLen {
				return nil, fmt.Errorf("tile %s: signature %q of %d values over the codec's %d bound", t.Coord, name, len(vec), maxBinarySigLen)
			}
			names = append(names, name)
			sigLen += 4 + len(name) + 4 + len(vec)*8
		}
		sort.Strings(names)
	}
	total := len(binaryMagic) + 8 + headerLen + 8 + int(dataLen) + 4
	if sigLen > 0 {
		total += 8 + sigLen
	}

	b := slices.Grow(dst, total)
	start := len(b)
	b = append(b, binaryMagic...)
	b = binary.LittleEndian.AppendUint32(b, secHeader)
	b = binary.LittleEndian.AppendUint32(b, uint32(headerLen))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Coord.Level))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Coord.Y))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Coord.X))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Size))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.Attrs)))
	for _, a := range t.Attrs {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(a)))
		b = append(b, a...)
	}
	b = binary.LittleEndian.AppendUint32(b, secData)
	b = binary.LittleEndian.AppendUint32(b, uint32(dataLen))
	for _, g := range t.Data {
		for _, v := range g {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	if sigLen > 0 {
		b = binary.LittleEndian.AppendUint32(b, secSignatures)
		b = binary.LittleEndian.AppendUint32(b, uint32(sigLen))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(names)))
		for _, name := range names {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(name)))
			b = append(b, name...)
			vec := t.Signatures[name]
			b = binary.LittleEndian.AppendUint32(b, uint32(len(vec)))
			for _, v := range vec {
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
			}
		}
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
	return b, nil
}

// DecodeBinary reconstructs a tile encoded with EncodeBinary. The payload
// is untrusted input (it arrives over HTTP): every length is bounded
// before allocation and the CRC32 trailer is verified before any section
// is parsed.
func DecodeBinary(data []byte) (*Tile, error) {
	if len(data) < len(binaryMagic)+4 {
		return nil, fmt.Errorf("tile: binary payload of %d bytes too short", len(data))
	}
	if string(data[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("tile: bad binary magic %q", data[:len(binaryMagic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("tile: binary payload checksum mismatch (%08x != %08x)", got, want)
	}
	t := &Tile{}
	var sawHeader, sawData, sawSigs bool
	rest := body[len(binaryMagic):]
	for len(rest) > 0 {
		if len(rest) < 8 {
			return nil, fmt.Errorf("tile: truncated section frame (%d bytes)", len(rest))
		}
		id := binary.LittleEndian.Uint32(rest[:4])
		ln := binary.LittleEndian.Uint32(rest[4:8])
		rest = rest[8:]
		if uint64(ln) > uint64(len(rest)) {
			return nil, fmt.Errorf("tile: section %d length %d overruns payload", id, ln)
		}
		sec := rest[:ln]
		rest = rest[ln:]
		switch id {
		case secHeader:
			if sawHeader {
				return nil, fmt.Errorf("tile: duplicate header section")
			}
			sawHeader = true
			if err := decodeBinaryHeader(t, sec); err != nil {
				return nil, err
			}
		case secData:
			if sawData {
				return nil, fmt.Errorf("tile: duplicate data section")
			}
			if !sawHeader {
				return nil, fmt.Errorf("tile: data section before header")
			}
			sawData = true
			if err := decodeBinaryData(t, sec); err != nil {
				return nil, err
			}
		case secSignatures:
			if sawSigs {
				return nil, fmt.Errorf("tile: duplicate signatures section")
			}
			sawSigs = true
			if err := decodeBinarySignatures(t, sec); err != nil {
				return nil, err
			}
		default:
			// Unknown sections are skipped: a newer writer may append
			// sections this reader doesn't know about.
		}
	}
	if !sawHeader || !sawData {
		return nil, fmt.Errorf("tile: binary payload missing required sections")
	}
	return t, nil
}

func binaryCoordValid(c Coord) bool {
	if c.Level < 0 || c.Level >= maxBinaryLevel {
		return false
	}
	side := 1 << c.Level
	return c.Y >= 0 && c.Y < side && c.X >= 0 && c.X < side
}

func decodeBinaryHeader(t *Tile, sec []byte) error {
	if len(sec) < 20 {
		return fmt.Errorf("tile: truncated header section (%d bytes)", len(sec))
	}
	lvl := binary.LittleEndian.Uint32(sec[0:4])
	y := binary.LittleEndian.Uint32(sec[4:8])
	x := binary.LittleEndian.Uint32(sec[8:12])
	size := binary.LittleEndian.Uint32(sec[12:16])
	nattrs := binary.LittleEndian.Uint32(sec[16:20])
	if size == 0 || size > maxTileSize {
		return fmt.Errorf("tile: corrupt size %d", size)
	}
	if nattrs > maxBinaryAttrs {
		return fmt.Errorf("tile: corrupt attribute count %d", nattrs)
	}
	c := Coord{Level: int(lvl), Y: int(y), X: int(x)}
	if !binaryCoordValid(c) {
		return fmt.Errorf("tile: corrupt coordinate %s", c)
	}
	t.Coord, t.Size = c, int(size)
	rest := sec[20:]
	attrs := make([]string, nattrs)
	for i := range attrs {
		if len(rest) < 4 {
			return fmt.Errorf("tile: truncated attribute name")
		}
		ln := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if ln > maxBinaryString {
			return fmt.Errorf("tile: corrupt attribute name length %d", ln)
		}
		if uint64(ln) > uint64(len(rest)) {
			return fmt.Errorf("tile: truncated attribute name")
		}
		attrs[i] = string(rest[:ln])
		rest = rest[ln:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("tile: %d trailing bytes in header section", len(rest))
	}
	t.Attrs = attrs
	return nil
}

func decodeBinaryData(t *Tile, sec []byte) error {
	cells := t.Size * t.Size
	if want := uint64(len(t.Attrs)) * uint64(cells) * 8; uint64(len(sec)) != want {
		return fmt.Errorf("tile %s: data section is %d bytes, want %d", t.Coord, len(sec), want)
	}
	t.Data = make([][]float64, len(t.Attrs))
	off := 0
	for i := range t.Data {
		g := make([]float64, cells)
		for c := range g {
			g[c] = math.Float64frombits(binary.LittleEndian.Uint64(sec[off:]))
			off += 8
		}
		t.Data[i] = g
	}
	return nil
}

func decodeBinarySignatures(t *Tile, sec []byte) error {
	if len(sec) < 4 {
		return fmt.Errorf("tile: truncated signatures section")
	}
	n := binary.LittleEndian.Uint32(sec[:4])
	rest := sec[4:]
	// n == 0 is rejected too: the canonical encoding omits the section
	// entirely for signature-free tiles, and decode(encode(t)) should be a
	// fixed point.
	if n == 0 || n > maxBinarySigs {
		return fmt.Errorf("tile: corrupt signature count %d", n)
	}
	sigs := make(map[string][]float64, n)
	for i := uint32(0); i < n; i++ {
		if len(rest) < 4 {
			return fmt.Errorf("tile: truncated signature name")
		}
		nameLen := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if nameLen > maxBinaryString {
			return fmt.Errorf("tile: corrupt signature name length %d", nameLen)
		}
		if uint64(nameLen) > uint64(len(rest)) {
			return fmt.Errorf("tile: truncated signature name")
		}
		name := string(rest[:nameLen])
		rest = rest[nameLen:]
		if len(rest) < 4 {
			return fmt.Errorf("tile: truncated signature vector")
		}
		vecLen := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if vecLen > maxBinarySigLen {
			return fmt.Errorf("tile: corrupt signature length %d", vecLen)
		}
		if uint64(vecLen)*8 > uint64(len(rest)) {
			return fmt.Errorf("tile: truncated signature vector")
		}
		vec := make([]float64, vecLen)
		for v := range vec {
			vec[v] = math.Float64frombits(binary.LittleEndian.Uint64(rest[v*8:]))
		}
		rest = rest[vecLen*8:]
		if _, dup := sigs[name]; dup {
			return fmt.Errorf("tile: duplicate signature %q", name)
		}
		sigs[name] = vec
	}
	if len(rest) != 0 {
		return fmt.Errorf("tile: %d trailing bytes in signatures section", len(rest))
	}
	t.Signatures = sigs
	return nil
}
