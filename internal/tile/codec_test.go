package tile

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"forecache/internal/array"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// codecTile is a deterministic tile exercising every section of the wire
// format: multiple attributes, NaN cells, negative/denormal/extreme floats
// and multiple signatures. It backs both the golden file and the
// cross-format tests, so changing it requires regenerating the fixture.
func codecTile() *Tile {
	return &Tile{
		Coord: Coord{Level: 3, Y: 5, X: 2},
		Size:  4,
		Attrs: []string{"ndsi", "snow_cover"},
		Data: [][]float64{
			{0, 1.5, -2.25, math.NaN(), 0.1, 1e-7, -1e21, 1e20, math.SmallestNonzeroFloat64, math.MaxFloat64, -0.000001, 42, math.NaN(), -0.5, 7, 1.0 / 3.0},
			{1, 0, math.NaN(), 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, math.Copysign(0, -1)},
		},
		Signatures: map[string][]float64{
			"normal": {0.25, 1.75},
			"hist":   {1, 2, 3, 4, 5},
		},
	}
}

// legacyMarshalJSON is the pre-codec MarshalJSON implementation (the
// per-cell *float64 mirror), kept as the byte-compatibility oracle for the
// streamed encoder and as the benchmark baseline.
func legacyMarshalJSON(t *Tile) ([]byte, error) {
	jt := jsonTile{Coord: t.Coord, Size: t.Size, Attrs: t.Attrs, Signatures: t.Signatures}
	jt.Data = make([][]*float64, len(t.Data))
	for i, g := range t.Data {
		row := make([]*float64, len(g))
		for j := range g {
			if !math.IsNaN(g[j]) {
				v := g[j]
				row[j] = &v
			}
		}
		jt.Data[i] = row
	}
	return json.Marshal(jt)
}

func TestMarshalJSONMatchesLegacy(t *testing.T) {
	tiles := map[string]*Tile{
		"full":    codecTile(),
		"no-sigs": {Coord: Coord{Level: 1, Y: 0, X: 1}, Size: 2, Attrs: []string{"v"}, Data: [][]float64{{1, math.NaN(), -3.5, 0}}},
		"empty":   {Coord: Coord{}, Size: 1, Attrs: nil, Data: nil},
		"empty-sigs": {Coord: Coord{}, Size: 1, Attrs: []string{"v"}, Data: [][]float64{{0.5}},
			Signatures: map[string][]float64{}},
		"escaped-attr": {Coord: Coord{}, Size: 1, Attrs: []string{"a<b&c"}, Data: [][]float64{{1}}},
	}
	for name, tl := range tiles {
		got, err := tl.MarshalJSON()
		if err != nil {
			t.Fatalf("%s: MarshalJSON: %v", name, err)
		}
		want, err := legacyMarshalJSON(tl)
		if err != nil {
			t.Fatalf("%s: legacy marshal: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: streamed JSON diverges from legacy:\n got %s\nwant %s", name, got, want)
		}
	}
}

func TestMarshalJSONMatchesLegacyQuick(t *testing.T) {
	f := func(a, b, c float64, exp int16, nan bool) bool {
		// Sweep the magnitude range that crosses encoding/json's 'f'/'e'
		// format switch points.
		scaled := c * math.Pow(10, float64(exp%25))
		cells := []float64{a, b, scaled, -scaled}
		if nan {
			cells[1] = math.NaN()
		}
		tl := &Tile{Coord: Coord{Level: 1, Y: 1, X: 0}, Size: 2, Attrs: []string{"v"}, Data: [][]float64{cells}}
		got, err1 := tl.MarshalJSON()
		want, err2 := legacyMarshalJSON(tl)
		if (err1 != nil) != (err2 != nil) {
			return false
		}
		return err1 != nil || bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMarshalJSONRejectsInf(t *testing.T) {
	tl := &Tile{Size: 1, Attrs: []string{"v"}, Data: [][]float64{{math.Inf(1)}}}
	if _, err := tl.MarshalJSON(); err == nil {
		t.Error("MarshalJSON accepted +Inf; legacy encoder rejected it")
	}
}

func TestEncodeJSONAppendsNewline(t *testing.T) {
	tl := codecTile()
	body, err := tl.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := tl.MarshalJSON()
	if !bytes.Equal(body, append(raw, '\n')) {
		t.Error("EncodeJSON is not MarshalJSON plus a trailing newline")
	}
}

// tilesEqual compares tiles with NaN-aware grid and signature equality.
func tilesEqual(a, b *Tile) bool {
	if a.Coord != b.Coord || a.Size != b.Size || !reflect.DeepEqual(a.Attrs, b.Attrs) {
		return false
	}
	if len(a.Data) != len(b.Data) || len(a.Signatures) != len(b.Signatures) {
		return false
	}
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	}
	for i := range a.Data {
		if !eq(a.Data[i], b.Data[i]) {
			return false
		}
	}
	for name, vec := range a.Signatures {
		if !eq(vec, b.Signatures[name]) {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	pyr, err := Build(rawArray(t, 16), Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	pyr.ComputeMetadata(func(tl *Tile) map[string][]float64 {
		return map[string][]float64{"hist": {1, 2, 3}}
	})
	tiles := []*Tile{codecTile()}
	pyr.EachTile(func(tl *Tile) bool {
		tiles = append(tiles, tl)
		return true
	})
	for _, tl := range tiles {
		enc, err := EncodeBinary(tl)
		if err != nil {
			t.Fatalf("tile %s: EncodeBinary: %v", tl.Coord, err)
		}
		got, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("tile %s: DecodeBinary: %v", tl.Coord, err)
		}
		if !tilesEqual(tl, got) {
			t.Errorf("tile %s: binary round trip mutated the tile", tl.Coord)
		}
		// Canonical form: re-encoding the decoded tile reproduces the bytes.
		enc2, err := EncodeBinary(got)
		if err != nil {
			t.Fatalf("tile %s: re-encode: %v", tl.Coord, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Errorf("tile %s: re-encoded bytes differ", tl.Coord)
		}
	}
}

// TestBinaryGolden pins the wire format to committed fixture bytes so it
// cannot drift silently: any codec change that alters the encoding must
// regenerate the fixture (go test ./internal/tile -run Golden -update) and
// announce a format version bump.
func TestBinaryGolden(t *testing.T) {
	path := filepath.Join("testdata", "codec_golden_v1.bin")
	enc, err := EncodeBinary(codecTile())
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(enc, golden) {
		t.Fatalf("EncodeBinary output diverged from the committed wire format (%d vs %d bytes); if intentional, bump the codec version and regenerate with -update", len(enc), len(golden))
	}
	dec, err := DecodeBinary(golden)
	if err != nil {
		t.Fatalf("DecodeBinary(golden): %v", err)
	}
	if !tilesEqual(dec, codecTile()) {
		t.Error("golden fixture no longer decodes to the reference tile")
	}
}

// TestCrossFormatEquivalence: the binary round trip and the JSON round trip
// land on the same tile, NaN cells and signatures included.
func TestCrossFormatEquivalence(t *testing.T) {
	src := codecTile()
	enc, err := EncodeBinary(src)
	if err != nil {
		t.Fatal(err)
	}
	fromBinary, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON Tile
	if err := json.Unmarshal(js, &fromJSON); err != nil {
		t.Fatal(err)
	}
	if !tilesEqual(fromBinary, &fromJSON) {
		t.Errorf("binary and JSON round trips disagree:\nbinary %+v\njson   %+v", fromBinary, &fromJSON)
	}
}

func TestDecodeBinaryRejectsCorruption(t *testing.T) {
	valid, err := EncodeBinary(codecTile())
	if err != nil {
		t.Fatal(err)
	}
	reseal := func(b []byte) []byte {
		// Recompute the trailer so the mutation under test — not the
		// checksum — is what the decoder trips on.
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
		return b
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       valid[:6],
		"bad magic":   append([]byte("NOPE"), valid[4:]...),
		"truncated":   valid[:len(valid)/2],
		"bit flip":    func() []byte { b := bytes.Clone(valid); b[len(b)/2] ^= 0x40; return b }(),
		"crc flip":    func() []byte { b := bytes.Clone(valid); b[len(b)-1] ^= 0xff; return b }(),
		"no sections": reseal([]byte(binaryMagic + "\x00\x00\x00\x00")),
		"huge size": func() []byte {
			b := bytes.Clone(valid)
			binary.LittleEndian.PutUint32(b[4+8+12:], 1<<31) // header size field
			return reseal(b)
		}(),
		"bad section len": func() []byte {
			b := bytes.Clone(valid)
			binary.LittleEndian.PutUint32(b[8:12], 1<<30) // header section length
			return reseal(b)
		}(),
		"dup header": func() []byte {
			// Duplicate the header section frame at the end of the body.
			b := bytes.Clone(valid[:len(valid)-4])
			hdrLen := binary.LittleEndian.Uint32(b[8:12])
			b = append(b, b[4:12+hdrLen]...)
			return reseal(append(b, 0, 0, 0, 0))
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeBinary(data); err == nil {
			t.Errorf("%s: DecodeBinary accepted corrupt payload", name)
		}
	}
}

// TestDecodeBinarySkipsUnknownSections: a payload carrying a section id
// this reader doesn't know still decodes (forward compatibility).
func TestDecodeBinarySkipsUnknownSections(t *testing.T) {
	valid, err := EncodeBinary(codecTile())
	if err != nil {
		t.Fatal(err)
	}
	b := bytes.Clone(valid[:len(valid)-4])
	b = binary.LittleEndian.AppendUint32(b, 0xbeef) // unknown id
	b = binary.LittleEndian.AppendUint32(b, 3)
	b = append(b, "xyz"...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	got, err := DecodeBinary(b)
	if err != nil {
		t.Fatalf("DecodeBinary with unknown section: %v", err)
	}
	if !tilesEqual(got, codecTile()) {
		t.Error("unknown section corrupted the decoded tile")
	}
}

func TestEncodeBinaryRejectsMalformedTiles(t *testing.T) {
	cases := map[string]*Tile{
		"zero size":     {Size: 0},
		"oversize":      {Size: maxTileSize + 1, Coord: Coord{}},
		"bad coord":     {Size: 2, Coord: Coord{Level: 1, Y: 5, X: 0}, Attrs: []string{"v"}, Data: [][]float64{make([]float64, 4)}},
		"grid mismatch": {Size: 2, Attrs: []string{"v"}, Data: [][]float64{{1, 2}}},
		"attr mismatch": {Size: 2, Attrs: []string{"v", "w"}, Data: [][]float64{make([]float64, 4)}},
	}
	for name, tl := range cases {
		if _, err := EncodeBinary(tl); err == nil {
			t.Errorf("%s: EncodeBinary accepted a malformed tile", name)
		}
	}
}

// TestStreamedMarshalAllocsFlat: the rewritten JSON encoder's allocation
// count must not scale with cell count — the legacy path allocated a
// *float64 per cell.
func TestStreamedMarshalAllocsFlat(t *testing.T) {
	mk := func(size int) *Tile {
		g := make([]float64, size*size)
		for i := range g {
			g[i] = float64(i) * 1.25
		}
		return &Tile{Coord: Coord{Level: 1, Y: 0, X: 0}, Size: size, Attrs: []string{"v"}, Data: [][]float64{g}}
	}
	small, large := mk(8), mk(64)
	allocs := func(tl *Tile) float64 {
		return testing.AllocsPerRun(50, func() {
			if _, err := tl.MarshalJSON(); err != nil {
				t.Fatal(err)
			}
		})
	}
	a8, a64 := allocs(small), allocs(large)
	// 64x the cells must not cost meaningfully more allocations; allow a
	// small constant for buffer regrowth slack.
	if a64 > a8+4 {
		t.Errorf("allocs scale with cell count: %v for 64 cells vs %v for 4096", a8, a64)
	}
}

func TestTileBytesCountsEverything(t *testing.T) {
	base := &Tile{Size: 4, Attrs: []string{"v"}, Data: [][]float64{make([]float64, 16)}}
	withSigs := &Tile{Size: 4, Attrs: []string{"v"}, Data: [][]float64{make([]float64, 16)},
		Signatures: map[string][]float64{"normal": make([]float64, 10)}}
	if base.Bytes() <= 16*8 {
		t.Errorf("Bytes = %d, want > raw grid payload", base.Bytes())
	}
	// The signature must be charged for at least its values, its key and
	// the map entry.
	if diff := withSigs.Bytes() - base.Bytes(); diff < 10*8+len("normal") {
		t.Errorf("signatures add only %d bytes to the estimate", diff)
	}
	withAttrs := &Tile{Size: 4, Attrs: []string{"a_rather_long_attribute_name"}, Data: [][]float64{make([]float64, 16)}}
	if withAttrs.Bytes() <= base.Bytes() {
		t.Error("attribute name bytes not counted")
	}
}
