package tile

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"forecache/internal/array"
)

func sigPyramid(t *testing.T) *Pyramid {
	t.Helper()
	meta := func(tl *Tile) map[string][]float64 {
		mean, std, _, _, _, err := tl.Stats("v")
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(mean) {
			mean, std = 0, 0
		}
		return map[string][]float64{
			"normal": {mean, std},
			"tag":    {float64(tl.Coord.Level)},
		}
	}
	pyr, err := Build(rawArray(t, 32), Params{TileSize: 8, Agg: array.AggAvg, Metadata: meta})
	if err != nil {
		t.Fatal(err)
	}
	return pyr
}

func TestPyramidRoundTrip(t *testing.T) {
	pyr := sigPyramid(t)
	var buf bytes.Buffer
	if _, err := WritePyramid(&buf, pyr); err != nil {
		t.Fatalf("WritePyramid: %v", err)
	}
	got, err := ReadPyramid(&buf)
	if err != nil {
		t.Fatalf("ReadPyramid: %v", err)
	}
	if got.NumLevels() != pyr.NumLevels() || got.TileSize() != pyr.TileSize() ||
		got.NumTiles() != pyr.NumTiles() {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			got.NumLevels(), got.TileSize(), got.NumTiles(),
			pyr.NumLevels(), pyr.TileSize(), pyr.NumTiles())
	}
	// Every tile's cells and signatures must survive.
	pyr.EachTile(func(want *Tile) bool {
		have, err := got.Tile(want.Coord)
		if err != nil {
			t.Fatalf("missing tile %v: %v", want.Coord, err)
		}
		wg, _ := want.Grid("v")
		hg, _ := have.Grid("v")
		for i := range wg {
			if wg[i] != hg[i] && !(math.IsNaN(wg[i]) && math.IsNaN(hg[i])) {
				t.Fatalf("tile %v cell %d: %v != %v", want.Coord, i, wg[i], hg[i])
			}
		}
		for name, vec := range want.Signatures {
			got := have.Signatures[name]
			if len(got) != len(vec) {
				t.Fatalf("tile %v signature %s length %d != %d", want.Coord, name, len(got), len(vec))
			}
			for i := range vec {
				if got[i] != vec[i] {
					t.Fatalf("tile %v signature %s[%d] differs", want.Coord, name, i)
				}
			}
		}
		return true
	})
	// Level arrays must be rebuilt consistently: level cells equal tile
	// cells at the same location.
	lv, err := got.Level(2)
	if err != nil {
		t.Fatal(err)
	}
	tl, _ := got.Tile(Coord{Level: 2, Y: 1, X: 2})
	want, _ := tl.At("v", 3, 4)
	have, _ := lv.Get("v", 1*8+3, 2*8+4)
	if want != have {
		t.Errorf("rebuilt level cell = %v, want %v", have, want)
	}
}

func TestPyramidFileRoundTrip(t *testing.T) {
	pyr := sigPyramid(t)
	path := filepath.Join(t.TempDir(), "nested", "world.fcpy")
	if err := pyr.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.NumTiles() != pyr.NumTiles() {
		t.Errorf("NumTiles = %d, want %d", got.NumTiles(), pyr.NumTiles())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.fcpy")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestReadPyramidRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("FCPY"),                           // truncated after magic
		append([]byte("FCPY"), 9, 0, 0, 0),       // bad version
		append([]byte("FCPY"), 1, 0, 0, 0, 0, 0), // truncated header
	}
	for i, raw := range cases {
		if _, err := ReadPyramid(bytes.NewReader(raw)); err == nil {
			t.Errorf("case %d: corrupt stream accepted", i)
		}
	}
}

func TestReadPyramidRejectsTruncatedTiles(t *testing.T) {
	pyr := sigPyramid(t)
	var buf bytes.Buffer
	if _, err := WritePyramid(&buf, pyr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadPyramid(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated tile stream accepted")
	}
}

func BenchmarkPyramidWrite(b *testing.B) {
	a := array.NewZero(array.Schema{
		Name:  "RAW",
		Attrs: []string{"v"},
		Dims:  [2]array.Dim{{Name: "lat", Size: 128}, {Name: "lon", Size: 128}},
	})
	pyr, err := Build(a, Params{TileSize: 16, Agg: array.AggAvg})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := WritePyramid(&buf, pyr); err != nil {
			b.Fatal(err)
		}
	}
}
