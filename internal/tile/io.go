package tile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"forecache/internal/array"
)

// Binary persistence for complete pyramids, including per-tile signature
// metadata, so a dataset can be built once (expensive: aggregation + SIFT)
// and served many times. Format:
//
//	magic "FCPY" | version u32 | tileSize u32 | levels u32
//	| nattrs u32 | attr names | ntiles u32
//	| per tile: level u32 | y u32 | x u32
//	           | per attr: cells f64 LE
//	           | nsigs u32 | per sig: name | len u32 | values f64 LE
//
// Strings are u32 length-prefixed UTF-8. Tiles are written in
// deterministic (level, y, x) order.

const (
	pyramidMagic   = "FCPY"
	pyramidVersion = 1
	// maxTileSize bounds the per-side cell count the binary format carries.
	// The writer and reader enforce it symmetrically: anything WritePyramid
	// accepts, ReadPyramid reads back, and a header beyond the bound is
	// corruption, not data.
	maxTileSize = 1024
)

// WritePyramid streams the pyramid in binary form. Pyramids beyond the
// format's bounds (tile side over maxTileSize) are rejected up front so a
// written file is always readable back.
func WritePyramid(w io.Writer, p *Pyramid) (int64, error) {
	if p.TileSize() <= 0 || p.TileSize() > maxTileSize {
		return 0, fmt.Errorf("tile: tile size %d outside the format's (0, %d] bound", p.TileSize(), maxTileSize)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	count := func(err error, written int) error {
		n += int64(written)
		return err
	}
	writeU32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		written, err := bw.Write(buf[:])
		return count(err, written)
	}
	writeF64 := func(v float64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		written, err := bw.Write(buf[:])
		return count(err, written)
	}
	writeString := func(s string) error {
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		written, err := bw.WriteString(s)
		return count(err, written)
	}

	if written, err := bw.WriteString(pyramidMagic); err != nil {
		return n, err
	} else {
		n += int64(written)
	}
	if err := writeU32(pyramidVersion); err != nil {
		return n, err
	}
	if err := writeU32(uint32(p.TileSize())); err != nil {
		return n, err
	}
	if err := writeU32(uint32(p.NumLevels())); err != nil {
		return n, err
	}
	attrs := p.Attrs()
	if err := writeU32(uint32(len(attrs))); err != nil {
		return n, err
	}
	for _, a := range attrs {
		if err := writeString(a); err != nil {
			return n, err
		}
	}
	if err := writeU32(uint32(p.NumTiles())); err != nil {
		return n, err
	}
	var failure error
	p.EachTile(func(t *Tile) bool {
		if err := writeU32(uint32(t.Coord.Level)); err != nil {
			failure = err
			return false
		}
		if err := writeU32(uint32(t.Coord.Y)); err != nil {
			failure = err
			return false
		}
		if err := writeU32(uint32(t.Coord.X)); err != nil {
			failure = err
			return false
		}
		for _, g := range t.Data {
			for _, v := range g {
				if err := writeF64(v); err != nil {
					failure = err
					return false
				}
			}
		}
		names := make([]string, 0, len(t.Signatures))
		for name := range t.Signatures {
			names = append(names, name)
		}
		sort.Strings(names)
		if err := writeU32(uint32(len(names))); err != nil {
			failure = err
			return false
		}
		for _, name := range names {
			if err := writeString(name); err != nil {
				failure = err
				return false
			}
			vec := t.Signatures[name]
			if err := writeU32(uint32(len(vec))); err != nil {
				failure = err
				return false
			}
			for _, v := range vec {
				if err := writeF64(v); err != nil {
					failure = err
					return false
				}
			}
		}
		return true
	})
	if failure != nil {
		return n, failure
	}
	return n, bw.Flush()
}

// ReadPyramid reconstructs a pyramid written with WritePyramid.
func ReadPyramid(r io.Reader) (*Pyramid, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	readU32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	readF64 := func() (float64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	}
	readString := func() (string, error) {
		ln, err := readU32()
		if err != nil {
			return "", err
		}
		if ln > 1<<20 {
			return "", fmt.Errorf("tile: corrupt string length %d", ln)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != pyramidMagic {
		return nil, fmt.Errorf("tile: bad pyramid magic %q", magic)
	}
	version, err := readU32()
	if err != nil {
		return nil, err
	}
	if version != pyramidVersion {
		return nil, fmt.Errorf("tile: unsupported pyramid version %d", version)
	}
	tileSize, err := readU32()
	if err != nil {
		return nil, err
	}
	levels, err := readU32()
	if err != nil {
		return nil, err
	}
	// Sanity bounds keep a corrupt or adversarial header (this format is
	// read from disk) from driving huge allocations before the first data
	// read fails: maxTileSize cells per side is far above any real tiling
	// (and the writer enforces the same bound), and 24 levels is a
	// 16-million-tile side length.
	if tileSize == 0 || tileSize > maxTileSize || levels == 0 || levels > 24 {
		return nil, fmt.Errorf("tile: corrupt header (size %d, levels %d)", tileSize, levels)
	}
	nattrs, err := readU32()
	if err != nil {
		return nil, err
	}
	if nattrs > 1<<12 {
		return nil, fmt.Errorf("tile: corrupt attribute count %d", nattrs)
	}
	attrs := make([]string, nattrs)
	for i := range attrs {
		if attrs[i], err = readString(); err != nil {
			return nil, err
		}
	}
	ntiles, err := readU32()
	if err != nil {
		return nil, err
	}
	// A complete pyramid of L levels holds (4^L - 1) / 3 tiles; anything
	// larger is corrupt. Cap the map preallocation independently: ntiles is
	// attacker-controlled, the actual entries are gated by data reads.
	maxTiles := uint64(0)
	for l := uint32(0); l < levels; l++ {
		maxTiles += 1 << (2 * l)
	}
	if uint64(ntiles) > maxTiles {
		return nil, fmt.Errorf("tile: corrupt tile count %d for %d levels", ntiles, levels)
	}
	// Cap in uint64 before converting: on 32-bit platforms int(ntiles) can
	// go negative, and make(map, n) panics on negative hints.
	hint := int(min(uint64(ntiles), 1<<16))
	p := &Pyramid{
		params: Params{TileSize: int(tileSize), Agg: array.AggAvg},
		attrs:  attrs,
		levels: make([]*array.Array, levels),
		tiles:  make(map[Coord]*Tile, hint),
	}
	cells := int(tileSize) * int(tileSize)
	for i := uint32(0); i < ntiles; i++ {
		lvl, err := readU32()
		if err != nil {
			return nil, err
		}
		y, err := readU32()
		if err != nil {
			return nil, err
		}
		x, err := readU32()
		if err != nil {
			return nil, err
		}
		t := &Tile{
			Coord: Coord{Level: int(lvl), Y: int(y), X: int(x)},
			Size:  int(tileSize),
			Attrs: attrs,
			Data:  make([][]float64, len(attrs)),
		}
		if !coordInLevels(t.Coord, int(levels)) {
			return nil, fmt.Errorf("tile: corrupt coordinate %v", t.Coord)
		}
		for a := range attrs {
			g := make([]float64, cells)
			for c := range g {
				if g[c], err = readF64(); err != nil {
					return nil, err
				}
			}
			t.Data[a] = g
		}
		nsigs, err := readU32()
		if err != nil {
			return nil, err
		}
		if nsigs > 64 {
			return nil, fmt.Errorf("tile: corrupt signature count %d", nsigs)
		}
		if nsigs > 0 {
			t.Signatures = make(map[string][]float64, nsigs)
			for s := uint32(0); s < nsigs; s++ {
				name, err := readString()
				if err != nil {
					return nil, err
				}
				ln, err := readU32()
				if err != nil {
					return nil, err
				}
				if ln > 1<<20 {
					return nil, fmt.Errorf("tile: corrupt signature length %d", ln)
				}
				vec := make([]float64, ln)
				for v := range vec {
					if vec[v], err = readF64(); err != nil {
						return nil, err
					}
				}
				t.Signatures[name] = vec
			}
		}
		p.tiles[t.Coord] = t
	}
	if len(p.tiles) != int(ntiles) {
		return nil, fmt.Errorf("tile: %d duplicate tiles in stream", int(ntiles)-len(p.tiles))
	}
	// Rebuild the level arrays from the tiles so Level() keeps working.
	for l := 0; l < int(levels); l++ {
		if err := p.rebuildLevel(l); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func coordInLevels(c Coord, levels int) bool {
	if c.Level < 0 || c.Level >= levels {
		return false
	}
	side := 1 << c.Level
	return c.Y >= 0 && c.Y < side && c.X >= 0 && c.X < side
}

// rebuildLevel reassembles one level's materialized view from its tiles.
func (p *Pyramid) rebuildLevel(l int) error {
	side := p.Side(l)
	ts := p.params.TileSize
	dim := side * ts
	level := array.New(array.Schema{
		Name:  fmt.Sprintf("level%d", l),
		Attrs: p.attrs,
		Dims: [2]array.Dim{
			{Name: "row", Size: dim},
			{Name: "col", Size: dim},
		},
	})
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			t := p.tiles[Coord{Level: l, Y: y, X: x}]
			if t == nil {
				return fmt.Errorf("tile: level %d missing tile (%d,%d)", l, y, x)
			}
			for ai, attr := range p.attrs {
				dst, err := level.AttrData(attr)
				if err != nil {
					return err
				}
				src := t.Data[ai]
				for r := 0; r < ts; r++ {
					copy(dst[(y*ts+r)*dim+x*ts:(y*ts+r)*dim+x*ts+ts], src[r*ts:(r+1)*ts])
				}
			}
		}
	}
	p.levels[l] = level
	return nil
}

// SaveFile writes the pyramid to path, creating parent directories.
func (p *Pyramid) SaveFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := WritePyramid(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a pyramid written with SaveFile.
func LoadFile(path string) (*Pyramid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPyramid(f)
}
