package tile

import (
	"bytes"
	"math"
	"testing"

	"forecache/internal/array"
)

// fuzzPyramidBytes serializes a small real pyramid (with signatures) as the
// structured seed for the IO fuzzer.
func fuzzPyramidBytes(tb testing.TB) []byte {
	tb.Helper()
	a := array.NewZero(array.Schema{
		Name:  "FZ",
		Attrs: []string{"v"},
		Dims:  [2]array.Dim{{Name: "r", Size: 16}, {Name: "c", Size: 16}},
	})
	data, _ := a.AttrData("v")
	for i := range data {
		data[i] = float64(i%13) / 13
	}
	p, err := Build(a, Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		tb.Fatal(err)
	}
	p.ComputeMetadata(func(t *Tile) map[string][]float64 {
		return map[string][]float64{"hist": {1, 2, 3}}
	})
	var buf bytes.Buffer
	if _, err := WritePyramid(&buf, p); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadPyramid feeds arbitrary bytes to the pyramid reader. Run
// continuously with:
//
//	go test ./internal/tile -run '^$' -fuzz '^FuzzReadPyramid$' -fuzztime 10s
//
// Properties checked: no panic and no unbounded allocation on any input
// (corrupt headers must fail fast); any stream the reader accepts must
// survive a write→read round trip unchanged (shape, attrs, cell data and
// signatures), i.e. parsing is the inverse of serialization on its image.
func FuzzReadPyramid(f *testing.F) {
	valid := fuzzPyramidBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])     // truncated mid-stream
	f.Add([]byte("FCPY"))           // magic only
	f.Add([]byte("NOPE_not_a_pyr")) // wrong magic
	f.Add(bytes.Repeat(valid, 2))   // trailing garbage
	corrupt := bytes.Clone(valid)
	corrupt[5] ^= 0xff // version byte
	f.Add(corrupt)
	huge := bytes.Clone(valid)
	copy(huge[8:12], []byte{0xff, 0xff, 0xff, 0xff}) // tileSize u32 = max
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPyramid(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := WritePyramid(&buf, p); err != nil {
			t.Fatalf("accepted pyramid fails to serialize: %v", err)
		}
		q, err := ReadPyramid(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if q.NumLevels() != p.NumLevels() || q.NumTiles() != p.NumTiles() || q.TileSize() != p.TileSize() {
			t.Fatalf("round trip shape mismatch: %d/%d/%d vs %d/%d/%d",
				p.NumLevels(), p.NumTiles(), p.TileSize(),
				q.NumLevels(), q.NumTiles(), q.TileSize())
		}
		pa, qa := p.Attrs(), q.Attrs()
		if len(pa) != len(qa) {
			t.Fatalf("round trip attrs mismatch: %v vs %v", pa, qa)
		}
		p.EachTile(func(pt *Tile) bool {
			qt, err := q.Tile(pt.Coord)
			if err != nil {
				t.Fatalf("round trip lost tile %v: %v", pt.Coord, err)
			}
			for ai := range pt.Data {
				for ci, v := range pt.Data[ai] {
					got := qt.Data[ai][ci]
					if got != v && !(v != v && got != got) { // NaN-tolerant
						t.Fatalf("tile %v attr %d cell %d: %v != %v", pt.Coord, ai, ci, got, v)
					}
				}
			}
			if len(pt.Signatures) != len(qt.Signatures) {
				t.Fatalf("tile %v signature count changed", pt.Coord)
			}
			return true
		})
	})
}

// TestReadPyramidRejectsCorruptHeaders locks the fuzz-motivated bounds in
// as deterministic regressions.
func TestReadPyramidRejectsCorruptHeaders(t *testing.T) {
	valid := fuzzPyramidBytes(t)
	mutate := func(off int, b []byte) []byte {
		out := bytes.Clone(valid)
		copy(out[off:], b)
		return out
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"huge tile size", mutate(8, []byte{0xff, 0xff, 0xff, 0xff})},
		{"zero tile size", mutate(8, []byte{0, 0, 0, 0})},
		{"too many levels", mutate(12, []byte{200, 0, 0, 0})},
		{"zero levels", mutate(12, []byte{0, 0, 0, 0})},
		{"tile count beyond pyramid capacity", mutate(25, []byte{0xff, 0xff, 0xff, 0x0f})},
		{"empty", nil},
		{"bad magic", []byte("XXXX")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadPyramid(bytes.NewReader(tc.data)); err == nil {
				t.Error("corrupt stream accepted")
			}
		})
	}
}

// FuzzTileDecodeBinary feeds arbitrary bytes to the single-tile binary
// decoder. Run continuously with:
//
//	go test ./internal/tile -run '^$' -fuzz '^FuzzTileDecodeBinary$' -fuzztime 10s
//
// Properties checked: no panic and no unbounded allocation on any input
// (the payload arrives over HTTP, so every length is attacker-controlled);
// any payload the decoder accepts must re-encode, and that canonical
// encoding must be a fixed point of decode∘encode.
func FuzzTileDecodeBinary(f *testing.F) {
	seedTiles := []*Tile{
		{Coord: Coord{Level: 1, Y: 0, X: 1}, Size: 2, Attrs: []string{"v"},
			Data: [][]float64{{1.5, math.NaN(), -2, 0}}},
		{Coord: Coord{Level: 3, Y: 5, X: 2}, Size: 4, Attrs: []string{"a", "b"},
			Data:       [][]float64{make([]float64, 16), make([]float64, 16)},
			Signatures: map[string][]float64{"normal": {0.5, 0.25}, "hist": {1, 2, 3}}},
	}
	for _, tl := range seedTiles {
		enc, err := EncodeBinary(tl)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)/2]) // truncated
		corrupt := bytes.Clone(enc)
		corrupt[len(corrupt)/3] ^= 0x80
		f.Add(corrupt) // checksum mismatch
	}
	f.Add([]byte("FCT1"))
	f.Add([]byte("NOPE"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tl, err := DecodeBinary(data)
		if err != nil {
			return
		}
		enc, err := EncodeBinary(tl)
		if err != nil {
			t.Fatalf("accepted tile fails to re-encode: %v", err)
		}
		tl2, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("canonical encoding fails to decode: %v", err)
		}
		enc2, err := EncodeBinary(tl2)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
