// Package forecache is a from-scratch Go reproduction of ForeCache
// (Battle, Chang, Stonebraker: "Dynamic Prefetching of Data Tiles for
// Interactive Visualization", SIGMOD 2016): a middleware layer between a
// tile-based visualization client and an array DBMS that prefetches data
// tiles with a two-level prediction engine.
//
// The package is a facade over the building blocks in internal/:
//
//   - an array engine standing in for SciDB (internal/array), with a small
//     AFL-style query language and the paper's NDSI pipeline;
//   - a synthetic MODIS-like satellite dataset (internal/modis);
//   - the tile pyramid data model (internal/tile) and tile signatures
//     including SIFT bag-of-visual-words (internal/sig);
//   - the two-level prediction engine (internal/core) over an SVM phase
//     classifier (internal/svm, internal/phase), a Kneser–Ney Markov chain
//     (internal/markov) and the recommenders (internal/recommend). The
//     recommenders are registered through a registry (recommend.Spec /
//     recommend.Registry): each spec owns its model's construction, its
//     training requirement (trace-trained vs online) and its column of
//     the default per-phase allocation table, so the facade, the server
//     and the eval harness all build their model sets — and the
//     allocation policy (core.RegistryPolicy) — from registered specs
//     instead of hard-coded wiring. Three recommenders ship registered:
//     the Actions-Based Markov model (trace-trained, immutable, shared by
//     every session), the Signature-Based visual-similarity model
//     (online, fresh per session) and the cross-session Hotspot model
//     (online, one deployment-wide lock-striped table of EWMA-decayed
//     per-zoom-level consumption frequencies, seeded from the training
//     traces and fed live from the cache outcome stream — enabled with
//     MiddlewareConfig.Hotspot / serve -hotspot);
//   - the middleware cache (internal/cache), the latency-modeling DBMS
//     adapter (internal/backend) and the HTTP boundary (internal/server,
//     internal/client);
//   - the asynchronous prefetch pipeline (internal/prefetch): a server-wide
//     scheduler that decouples prediction from DBMS fetching — engines
//     submit ranked candidate batches and return immediately, a bounded
//     worker pool fetches them in confidence order with per-session
//     fairness, duplicate requests across sessions coalesce into one DBMS
//     fetch (single-flight), and a session's newer batch cancels its stale
//     queued entries. The scheduler is adaptive and closed-loop: queued
//     entries lose utility as they age (DecayHalfLife) and by batch
//     position, a global queue budget (GlobalQueueBudget) sheds the
//     lowest-utility entries across all sessions at saturation, and a
//     Pressure signal feeds back into each engine so its prefetch budget K
//     shrinks under load (AdaptiveK) and recovers as the queue drains —
//     per session with FairShare, which scales backpressure by how far a
//     session's queue share exceeds its fair share 1/N so the flooding
//     session's K collapses first. With UtilityLearning the cache
//     attributes every prefetched tile's fate (consumed vs evicted
//     unconsumed) to the model, batch position and predicted analysis
//     phase that prefetched it, and a shared FeedbackCollector fits the
//     position-utility curve online from those outcomes
//     (Khameleon-style), replacing the static 0.85 position decay in
//     admission control. With AdaptiveAllocation the same outcomes drive
//     the allocation strategy itself: a shared core.AdaptivePolicy
//     re-splits each request's prefetch budget k per phase toward the
//     model whose prefetches actually get consumed — the registry's
//     prior table (the paper's §5.4.3, extended with a hotspot column
//     when the hotspot model is registered) is the prior until a phase
//     warms up, every model keeps a floor share for exploration
//     (tunable, with warmup and step bound, via
//     AllocationFloor/AllocationWarmup/AllocationMaxStep), hysteresis
//     bounds how fast shares move, and stale evidence decays with a
//     half-life so a dataset shift re-learns the split instead of being
//     pinned by history. With three registered models the learned split
//     is genuinely 3-way (the learned shares appear under /stats and as
//     forecache_allocation_share{phase,model} gauges). NewServer wires
//     one scheduler
//     (plus an optional cross-session tile pool and bounded session table)
//     across every session and trains the phase classifier and Markov
//     chain exactly once, sharing the immutable artifacts with every
//     session engine; NewMiddleware keeps the paper's synchronous mode so
//     the experiments stay deterministic. MetricsEndpoint exposes the
//     whole loop — queue/shed/coalesce counters, global and per-session
//     backpressure, aggregate cache hit rates, the learned curve — as
//     dependency-free Prometheus text under GET /metrics. At fleet scale
//     the serving tier shards: MiddlewareConfig.Shards (serve -shards)
//     splits the session table, TTL/LRU sweep and scheduler queues into
//     N independent shards behind a consistent-hash router keyed on
//     session id (internal/shard), each shard behind its own lock with
//     its own worker pool, while single-flight fetch deduplication and
//     all learned state stay deployment-wide and /stats + /metrics
//     aggregate per-shard snapshots into exact, monotone totals (with
//     per-shard series like forecache_shard_sessions{shard="0"});
//     Shards=1, the default, is the unsharded deployment bit-for-bit;
//   - push-based continuous delivery (internal/push): with
//     MiddlewareConfig.Push (serve -push) the server mounts GET /stream —
//     one long-lived SSE response per session — and every completed
//     prefetch for a stream-attached session is written down it as a
//     framed tile payload carrying its coordinate, model attribution and
//     score, with heartbeats while idle and teardown on session eviction
//     and Close (Khameleon-style: round-trip latency moves from
//     paid-per-pan to hidden-behind-the-stream). The registry measures
//     each stream's drain rate from real writes and the scheduler's
//     admission control ages queued entries by queue-rank × drain delay,
//     so a slow connection's backlog loses shed fights it would have won
//     on score alone. The Go client (client.Attach) keeps a bounded
//     slot buffer — newest frame supersedes, consumed on request
//     (TileInfo.Streamed) — and auto-reattaches after a drop, with the
//     server backfilling the session's cached predictions. Stream
//     telemetry (open streams, pushed/backfilled/dropped frames,
//     push-to-consume lead time, per-session drain rates) rides /stats
//     and /metrics as forecache_push_* series. Push off is the pull
//     deployment bit-for-bit;
//   - zero-copy tile serving (internal/tile codec + encoded cache): with
//     MiddlewareConfig.BinaryTiles (serve -binary-tiles) every tile
//     response body — the streamed-JSON rendering and the versioned,
//     CRC-checked binary codec (Accept: application/x-forecache-tile),
//     each optionally gzip-compressed — is memoized in one
//     deployment-wide byte-budgeted LRU (EncodedCacheBudget) with
//     single-flight encoding, shared by the /tile handler and the push
//     registry, so a tile is encoded at most once per format however
//     it leaves the server. The Go client opts in with
//     NegotiateBinary; the default JSON wire format is byte-for-byte
//     unchanged, knob off or on. Cache traffic and encode latencies
//     ride /metrics as the forecache_tile_* series;
//   - the observability layer (internal/obs): with
//     MiddlewareConfig.Tracing every /tile request is traced end to end
//     (trace id echoed as X-Trace-ID, per-span breakdown across session
//     resolution, cache lookup, backend fetch and prefetch submission),
//     the slowest traces are retained in a bounded ring
//     (MiddlewareConfig.TraceBuffer) behind GET /debug/traces, and
//     /metrics grows lock-free latency histograms for request outcomes
//     (hit/miss/shed), scheduler queue wait, backend fetches and
//     prefetch lead time. MiddlewareConfig.Logger receives one
//     structured log line per finished trace; MiddlewareConfig.Pprof
//     registers net/http/pprof under GET /debug/pprof/. The same
//     package's strict exposition parser backs the `forecache scrape`
//     CLI subcommand, which CI points at a live server;
//   - crash-safe warm restarts (internal/persist): with
//     MiddlewareConfig.StateDir (serve -state-dir) the deployment's
//     learned state — the position-utility curve, the per-phase
//     allocation shares and the hotspot counter table — is snapshotted
//     to one versioned, per-section-checksummed file off the request
//     path (SnapshotInterval, default 30s; always again on Close, which
//     serve's SIGINT/SIGTERM handler now reaches) and restored in
//     NewServer before the first session, so a deploy or crash no
//     longer pays the full warmup tax. Writes are atomic (temp file +
//     fsync + rename), a damaged or version-skewed section cold-starts
//     only its own family, and snapshot health rides /stats and
//     /metrics (forecache_snapshot_age_seconds and friends);
//   - a user-study simulator (internal/study) and the experiment harness
//     reproducing every table and figure of the paper (internal/eval).
//
// Quickstart:
//
//	ds, _ := forecache.BuildWorld(forecache.WorldConfig{Seed: 1, Size: 512, TileSize: 16})
//	traces := ds.SimulateStudy(7)
//	mw, _ := ds.NewMiddleware(traces, forecache.MiddlewareConfig{K: 5})
//	resp, _ := mw.Request(forecache.Coord{})            // root tile: a miss
//	resp, _ = mw.Request(forecache.Coord{Level: 1})     // often prefetched
//
// See examples/ for runnable programs and cmd/forecache for the CLI that
// regenerates the paper's experiments.
package forecache
