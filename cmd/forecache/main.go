// Command forecache is the command-line front end of the ForeCache
// reproduction. Subcommands:
//
//	build     synthesize the MODIS world and persist the arrays to disk
//	tracegen  simulate the 18-user x 3-task study and save the traces
//	serve     run the HTTP middleware over a freshly built world
//	explore   walk a move script through the middleware and print tiles
//	bench     regenerate the paper's tables and figures (see -list)
//	scrape    fetch a /metrics URL and strictly validate the exposition
//
// Every subcommand is deterministic for a fixed -seed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"forecache"
	"forecache/internal/eval"
	"forecache/internal/obs"
	"forecache/internal/render"
	"forecache/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "tracegen":
		err = cmdTracegen(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "explore":
		err = cmdExplore(os.Args[2:])
	case "render":
		err = cmdRender(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "scrape":
		err = cmdScrape(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: forecache <subcommand> [flags]

subcommands:
  build     -seed -size -tile -out        build the world, persist arrays
  tracegen  -seed -size -tile -out        simulate the study, save traces
  serve     -seed -size -tile -addr -k [-async] [-push] [-prefetch-workers]
            [-prefetch-queue] [-global-queue] [-decay-half-life]
            [-adaptive-k] [-fair-share] [-utility-learning]
            [-adaptive-allocation] [-hotspot] [-alloc-floor]
            [-alloc-warmup] [-alloc-max-step] [-metrics]
            [-tracing] [-trace-buffer] [-pprof] [-log-level]
            [-state-dir] [-snapshot-interval]
            [-binary-tiles] [-encoded-cache-budget]
            [-shared-tiles] [-max-sessions] [-session-ttl]
                                          run the HTTP middleware
                                          (SIGINT/SIGTERM shut down
                                          gracefully: in-flight requests
                                          drain and learned state is
                                          snapshotted to -state-dir)
  explore   -seed -size -tile -moves     walk a move script, print tiles
  render    -seed -size -tile -level -out render a zoom level to PNG
  bench     -seed -size -tile [-list] [names...|all]  run experiments
  scrape    -url                         fetch /metrics, validate strictly`)
}

// worldFlags are the dataset knobs shared by all subcommands.
type worldFlags struct {
	seed int64
	size int
	tile int
}

func addWorldFlags(fs *flag.FlagSet) *worldFlags {
	wf := &worldFlags{}
	fs.Int64Var(&wf.seed, "seed", 42, "world and study seed")
	fs.IntVar(&wf.size, "size", 512, "raw grid cells per side")
	fs.IntVar(&wf.tile, "tile", 16, "tile cells per side")
	return wf
}

func (wf *worldFlags) build() (*forecache.Dataset, error) {
	fmt.Fprintf(os.Stderr, "building world: seed=%d size=%d tile=%d...\n", wf.seed, wf.size, wf.tile)
	start := time.Now()
	ds, err := forecache.BuildWorld(forecache.WorldConfig{
		Seed: wf.seed, Size: wf.size, TileSize: wf.tile,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "world ready: %d levels, %d tiles, %.1f MB of tiles (%s)\n",
		ds.Pyramid.NumLevels(), ds.Pyramid.NumTiles(),
		float64(ds.Pyramid.MemBytes())/1e6, time.Since(start).Round(time.Millisecond))
	return ds, nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	wf := addWorldFlags(fs)
	out := fs.String("out", "data", "output directory for array files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := wf.build()
	if err != nil {
		return err
	}
	if err := ds.DB.SaveDir(*out); err != nil {
		return err
	}
	fmt.Printf("arrays saved under %s: %s\n", *out, strings.Join(ds.DB.Names(), ", "))
	return nil
}

func cmdTracegen(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ExitOnError)
	wf := addWorldFlags(fs)
	out := fs.String("out", "traces", "output directory for trace JSON files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := wf.build()
	if err != nil {
		return err
	}
	traces := ds.SimulateStudy(wf.seed)
	if err := trace.SaveDir(*out, traces); err != nil {
		return err
	}
	total := 0
	for _, t := range traces {
		total += len(t.Requests)
	}
	fmt.Printf("%d traces (%d requests) saved under %s\n", len(traces), total, *out)
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	wf := addWorldFlags(fs)
	addr := fs.String("addr", ":8080", "listen address")
	k := fs.Int("k", 5, "prefetch budget in tiles")
	async := fs.Bool("async", true, "prefetch through the shared asynchronous scheduler")
	pushOn := fs.Bool("push", false, "continuous push delivery: stream completed prefetches to attached sessions over GET /stream and price scheduler admission by per-session drain rate (requires -async)")
	shards := fs.Int("shards", 1, "independent serving-tier shards behind a consistent-hash router keyed on session id (session tables, sweeps and scheduler queues go per-shard; single-flight and learned state stay deployment-wide)")
	workers := fs.Int("prefetch-workers", 4, "scheduler worker pool size (concurrent DBMS fetches)")
	queue := fs.Int("prefetch-queue", 64, "queued prefetch entries per session")
	globalQueue := fs.Int("global-queue", 1024, "queued prefetch entries across all sessions; lowest-utility entries are shed at saturation (negative = unlimited)")
	decayHalfLife := fs.Duration("decay-half-life", 2*time.Second, "queue age at which a pending prefetch entry's utility halves (negative disables)")
	adaptiveK := fs.Bool("adaptive-k", true, "shrink per-session prefetch budget K under scheduler backpressure")
	fairShare := fs.Bool("fair-share", true, "scope backpressure per session: the flooding session's K shrinks first (requires -adaptive-k)")
	utilityLearning := fs.Bool("utility-learning", true, "learn the position-utility curve from observed cache outcomes instead of the static 0.85 decay")
	adaptiveAllocation := fs.Bool("adaptive-allocation", true, "re-split the per-phase prefetch budget toward the model whose prefetches get consumed (static table as prior)")
	hotspot := fs.Bool("hotspot", true, "register the online cross-session hotspot recommender as a third model (one shared, decaying popularity table; makes -adaptive-allocation a 3-way split)")
	allocFloor := fs.Float64("alloc-floor", 0, "adaptive allocation: minimum budget share every model keeps (0 = default 0.1)")
	allocWarmup := fs.Int("alloc-warmup", 0, "adaptive allocation: per-(phase, model) outcomes before shares move (0 = default 30)")
	allocMaxStep := fs.Float64("alloc-max-step", 0, "adaptive allocation: per-reallocation share step bound (0 = default 0.02)")
	metrics := fs.Bool("metrics", true, "expose Prometheus text-format telemetry under GET /metrics")
	tracing := fs.Bool("tracing", true, "trace every request (X-Trace-ID, GET /debug/traces) and export per-stage latency histograms under /metrics")
	traceBuffer := fs.Int("trace-buffer", 256, "completed request traces retained for /debug/traces (negative keeps histograms only)")
	pprofOn := fs.Bool("pprof", false, "expose Go's net/http/pprof profiling handlers under GET /debug/pprof/")
	logLevel := fs.String("log-level", "info", "structured request log level: debug, info, warn or error (debug logs every finished trace)")
	stateDir := fs.String("state-dir", "", "directory for crash-safe snapshots of learned state (utility curve, allocation shares, hotspot table); restored at startup, written on -snapshot-interval and at shutdown (empty disables)")
	snapshotInterval := fs.Duration("snapshot-interval", 0, "background snapshot cadence (0 = 30s default; negative disables the ticker, shutdown still snapshots)")
	binaryTiles := fs.Bool("binary-tiles", false, "zero-recompute tile serving: memoize encoded payloads deployment-wide, content-negotiate the binary codec (Accept: application/x-forecache-tile) and gzip on /tile, and push cached bytes down streams; clients without the Accept header still get byte-identical JSON")
	encodedBudget := fs.Int64("encoded-cache-budget", 0, "encoded tile payload cache budget in bytes (0 = 64 MiB default; only meaningful with -binary-tiles)")
	sharedTiles := fs.Int("shared-tiles", 512, "cross-session shared tile pool capacity (0 disables)")
	maxSessions := fs.Int("max-sessions", 1024, "live session cap, LRU-evicted past it (0 = unlimited)")
	sessionTTL := fs.Duration("session-ttl", 30*time.Minute, "evict sessions idle this long (0 = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel)
	if err != nil {
		return err
	}
	ds, err := wf.build()
	if err != nil {
		return err
	}
	traces := ds.SimulateStudy(wf.seed)
	srv, err := ds.NewServer(traces, forecache.MiddlewareConfig{
		K:                  *k,
		AsyncPrefetch:      *async,
		Push:               *pushOn,
		Shards:             *shards,
		PrefetchWorkers:    *workers,
		PrefetchQueue:      *queue,
		GlobalQueueBudget:  *globalQueue,
		DecayHalfLife:      *decayHalfLife,
		AdaptiveK:          *adaptiveK,
		FairShare:          *fairShare,
		UtilityLearning:    *utilityLearning,
		AdaptiveAllocation: *adaptiveAllocation,
		Hotspot:            *hotspot,
		AllocationFloor:    *allocFloor,
		AllocationWarmup:   *allocWarmup,
		AllocationMaxStep:  *allocMaxStep,
		MetricsEndpoint:    *metrics,
		Tracing:            *tracing,
		TraceBuffer:        *traceBuffer,
		Pprof:              *pprofOn,
		Logger:             logger,
		StateDir:           *stateDir,
		SnapshotInterval:   *snapshotInterval,
		BinaryTiles:        *binaryTiles,
		EncodedCacheBudget: *encodedBudget,
		SharedTiles:        *sharedTiles,
		MaxSessions:        *maxSessions,
		SessionTTL:         *sessionTTL,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	mode := "inline prefetch"
	if *async {
		mode = fmt.Sprintf("async prefetch: %d workers, queue %d/session, global budget %d, decay half-life %s, adaptive K %v, fair share %v, utility learning %v, adaptive allocation %v, hotspot %v",
			*workers, *queue, *globalQueue, *decayHalfLife, *adaptiveK, *fairShare, *utilityLearning, *adaptiveAllocation, *hotspot)
	}
	if *shards > 1 {
		mode += fmt.Sprintf("; %d shards", *shards)
	}
	if *pushOn {
		mode += "; push delivery"
	}
	if *binaryTiles {
		mode += "; binary tile codec + encoded-payload cache"
	}
	endpoints := "GET /meta, /tile?level=&y=&x=, /stats"
	if *pushOn {
		endpoints += ", /stream"
	}
	if *metrics {
		endpoints += ", /metrics"
	}
	if *tracing {
		endpoints += ", /debug/traces"
	}
	if *pprofOn {
		endpoints += ", /debug/pprof/"
	}

	// Listen first so a bad address still fails fast with a non-zero exit,
	// then serve until the process is asked to stop. http.ListenAndServe
	// would block until the process is killed, which meant the
	// `defer srv.Close()` above NEVER ran: no graceful shutdown, no final
	// state snapshot. Instead, SIGINT/SIGTERM cancel the signal context,
	// in-flight requests drain through http.Server.Shutdown, and returning
	// normally lets the deferred srv.Close tear down the scheduler and
	// write the final snapshot.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("serving tiles on %s (%s; %s; POST /reset)\n", *addr, mode, endpoints)
	httpSrv := newHTTPServer(srv)
	if reg := srv.Push(); reg != nil {
		// Shutdown waits for in-flight handlers, and every attached push
		// stream IS an in-flight handler that would otherwise outlive the
		// drain window. Closing the registry when the drain begins ends each
		// stream's handler promptly, so SIGTERM with streams open still
		// drains and exits 0. (Registry Close is idempotent; the deferred
		// srv.Close repeats it harmlessly.)
		httpSrv.RegisterOnShutdown(reg.Close)
	}
	return serveUntilDone(ctx, httpSrv, ln)
}

// newHTTPServer wraps the middleware in an http.Server with the serve
// deployment's protective timeouts. ReadHeaderTimeout bounds how long a
// client may dribble out request headers (the slowloris hold-open that a
// zero-value server tolerates forever); IdleTimeout reaps keep-alive
// connections parked between requests. There is deliberately NO global
// WriteTimeout: it is an absolute deadline on every response, which would
// kill each long-lived /stream push response after the interval no matter
// how healthy — the stream handler instead arms a fresh per-write deadline
// via http.ResponseController, so only a peer that stops reading is
// dropped.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// serveUntilDone serves httpSrv on ln until the listener fails or ctx is
// cancelled (the signal path). On cancellation it drains in-flight
// requests via Shutdown — bounded, so a wedged client cannot hold the
// process open forever — and reports a clean nil; http.ErrServerClosed is
// likewise a clean exit, while real listener errors stay non-nil.
func serveUntilDone(ctx context.Context, httpSrv *http.Server, ln net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "signal received: draining connections, snapshotting state...")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			httpSrv.Close()
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	}
}

// cmdScrape fetches a Prometheus text-format endpoint and runs the same
// strict exposition validator the unit tests use (obs.ParsePromText). CI
// scrapes a live `serve` process with it, so a payload a real Prometheus
// scraper would reject fails the build, not the dashboard.
func cmdScrape(args []string) error {
	fs := flag.NewFlagSet("scrape", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8080/metrics", "metrics endpoint to fetch and validate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := http.Get(*url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: status %s", *url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	samples, err := obs.ParsePromText(string(body))
	if err != nil {
		return fmt.Errorf("scrape %s: invalid exposition: %w", *url, err)
	}
	histograms := 0
	for key := range samples {
		if strings.Contains(key, "_bucket{") {
			histograms++
		}
	}
	fmt.Printf("%s: %d samples valid (%d histogram buckets)\n", *url, len(samples), histograms)
	return nil
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	wf := addWorldFlags(fs)
	moves := fs.String("moves", "in-nw,in-se,right,down,out", "comma-separated move script")
	k := fs.Int("k", 5, "prefetch budget in tiles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := wf.build()
	if err != nil {
		return err
	}
	traces := ds.SimulateStudy(wf.seed)
	mw, err := ds.NewMiddleware(traces, forecache.MiddlewareConfig{K: *k})
	if err != nil {
		return err
	}
	cur := forecache.Coord{}
	resp, err := mw.Request(cur)
	if err != nil {
		return err
	}
	printTile(ds, resp, cur)
	for _, name := range strings.Split(*moves, ",") {
		mv, err := trace.ParseMove(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		next := trace.Apply(cur, mv)
		if !ds.Pyramid.Contains(next) {
			fmt.Printf("move %s would leave the dataset; skipping\n", mv)
			continue
		}
		cur = next
		resp, err = mw.Request(cur)
		if err != nil {
			return err
		}
		fmt.Printf("\nmove: %s\n", mv)
		printTile(ds, resp, cur)
	}
	st := mw.CacheStats()
	fmt.Printf("\nsession stats: %d hits, %d misses, hit rate %.0f%%\n",
		st.Hits, st.Misses, st.HitRate()*100)
	return nil
}

// printTile renders a tile as an ASCII heatmap (NDSI: '#' = snow, '.' =
// bare, '~' = ocean/empty).
func printTile(ds *forecache.Dataset, resp *forecache.Response, c forecache.Coord) {
	status := "MISS"
	if resp.Hit {
		status = "HIT"
	}
	fmt.Printf("tile %v  [%s, %s, phase %s]\n", c, status,
		resp.Latency.Round(time.Millisecond), resp.Phase)
	grid, err := resp.Tile.Grid(ds.Attr)
	if err != nil {
		fmt.Println(" ", err)
		return
	}
	size := resp.Tile.Size
	for y := 0; y < size; y += 1 {
		var b strings.Builder
		for x := 0; x < size; x++ {
			v := grid[y*size+x]
			switch {
			case math.IsNaN(v):
				b.WriteByte('~')
			case v > 0.4:
				b.WriteByte('#')
			case v > 0:
				b.WriteByte('+')
			case v > -0.2:
				b.WriteByte('.')
			default:
				b.WriteByte('~')
			}
		}
		fmt.Println(" ", b.String())
	}
}

func cmdRender(args []string) error {
	fs := flag.NewFlagSet("render", flag.ExitOnError)
	wf := addWorldFlags(fs)
	level := fs.Int("level", 2, "zoom level to render")
	scale := fs.Int("scale", 2, "pixels per cell")
	out := fs.String("out", "world.png", "output PNG path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := wf.build()
	if err != nil {
		return err
	}
	img, err := render.Level(ds.Pyramid, *level, render.Options{
		Attr: ds.Attr, Min: -1, Max: 1, Scale: *scale,
	})
	if err != nil {
		return err
	}
	if err := render.SavePNG(*out, img); err != nil {
		return err
	}
	fmt.Printf("level %d rendered to %s (%dx%d px)\n",
		*level, *out, img.Bounds().Dx(), img.Bounds().Dy())
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	wf := addWorldFlags(fs)
	list := fs.Bool("list", false, "list available experiments")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range eval.Experiments() {
			fmt.Printf("  %-16s %s\n", e.Name, e.Paper)
		}
		return nil
	}
	names := fs.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = nil
		for _, e := range eval.Experiments() {
			names = append(names, e.Name)
		}
	}
	ds, err := wf.build()
	if err != nil {
		return err
	}
	traces := ds.SimulateStudy(wf.seed)
	h := ds.Harness(traces)
	for _, name := range names {
		e, ok := eval.Lookup(name)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", name)
		}
		fmt.Printf("\n=== %s (%s) ===\n", e.Name, e.Paper)
		start := time.Now()
		if err := e.Run(os.Stdout, h); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[%s took %s]\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
