package main

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The subcommands are exercised with tiny worlds so CLI plumbing (flag
// parsing, output files, error paths) stays covered by `go test ./...`.

func tinyWorld(extra ...string) []string {
	return append([]string{"-seed", "3", "-size", "128", "-tile", "16"}, extra...)
}

func TestCmdBuildWritesArrays(t *testing.T) {
	dir := t.TempDir()
	if err := cmdBuild(tinyWorld("-out", dir)); err != nil {
		t.Fatalf("build: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.fcar"))
	if err != nil || len(matches) == 0 {
		t.Errorf("no array files written: %v %v", matches, err)
	}
}

func TestCmdTracegenWritesTraces(t *testing.T) {
	dir := t.TempDir()
	if err := cmdTracegen(tinyWorld("-out", dir)); err != nil {
		t.Fatalf("tracegen: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(matches) != 54 {
		t.Errorf("trace files = %d, want 54 (%v)", len(matches), err)
	}
}

func TestCmdRenderWritesPNG(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.png")
	if err := cmdRender(tinyWorld("-level", "2", "-out", out)); err != nil {
		t.Fatalf("render: %v", err)
	}
	info, err := os.Stat(out)
	if err != nil || info.Size() == 0 {
		t.Errorf("png missing or empty: %v", err)
	}
}

func TestCmdRenderBadLevel(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.png")
	if err := cmdRender(tinyWorld("-level", "99", "-out", out)); err == nil {
		t.Error("out-of-range level should fail")
	}
}

func TestCmdExploreScript(t *testing.T) {
	if err := cmdExplore(tinyWorld("-moves", "in-nw,in-se,out")); err != nil {
		t.Fatalf("explore: %v", err)
	}
	if err := cmdExplore(tinyWorld("-moves", "sideways")); err == nil {
		t.Error("unknown move should fail")
	}
}

func TestCmdBenchListAndUnknown(t *testing.T) {
	if err := cmdBench([]string{"-list"}); err != nil {
		t.Fatalf("bench -list: %v", err)
	}
	if err := cmdBench(tinyWorld("no-such-experiment")); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestCmdBenchRunsCheapExperiment(t *testing.T) {
	if err := cmdBench(tinyWorld("fig9")); err != nil {
		t.Fatalf("bench fig9: %v", err)
	}
}

func TestCmdScrapeValidatesExposition(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("# HELP up 1 while serving.\n# TYPE up gauge\nup 1\n"))
	}))
	defer good.Close()
	if err := cmdScrape([]string{"-url", good.URL}); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("up 1\n")) // sample without HELP/TYPE
	}))
	defer bad.Close()
	if err := cmdScrape([]string{"-url", bad.URL}); err == nil {
		t.Error("invalid exposition accepted")
	}

	failing := httptest.NewServer(http.NotFoundHandler())
	defer failing.Close()
	if err := cmdScrape([]string{"-url", failing.URL}); err == nil {
		t.Error("404 endpoint accepted")
	}
}

func TestCmdServeRejectsBadLogLevel(t *testing.T) {
	if err := cmdServe(tinyWorld("-log-level", "loud")); err == nil {
		t.Error("unknown log level should fail before building the world")
	}
}

// TestServeUntilDoneShutsDownOnSignal drives the serve loop's shutdown
// path with a cancelable context standing in for SIGTERM: the loop must
// drain the http.Server and return nil so deferred cleanup (the final
// snapshot in cmdServe) runs.
func TestServeUntilDoneShutsDownOnSignal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveUntilDone(ctx, httpSrv, ln) }()

	// The server really serves before the "signal" arrives.
	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatalf("server not serving: %v", err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil (clean exit)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntilDone did not return after the signal")
	}
}

// TestServeUntilDonePropagatesServeError: a listener failing under the
// server must surface as a non-nil error (non-zero exit), not be mistaken
// for a clean shutdown.
func TestServeUntilDonePropagatesServeError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // Serve on a closed listener fails immediately
	httpSrv := &http.Server{Handler: http.NewServeMux()}
	if err := serveUntilDone(context.Background(), httpSrv, ln); err == nil {
		t.Fatal("serve error swallowed; want non-nil")
	}
}
