package main

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// The subcommands are exercised with tiny worlds so CLI plumbing (flag
// parsing, output files, error paths) stays covered by `go test ./...`.

func tinyWorld(extra ...string) []string {
	return append([]string{"-seed", "3", "-size", "128", "-tile", "16"}, extra...)
}

func TestCmdBuildWritesArrays(t *testing.T) {
	dir := t.TempDir()
	if err := cmdBuild(tinyWorld("-out", dir)); err != nil {
		t.Fatalf("build: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.fcar"))
	if err != nil || len(matches) == 0 {
		t.Errorf("no array files written: %v %v", matches, err)
	}
}

func TestCmdTracegenWritesTraces(t *testing.T) {
	dir := t.TempDir()
	if err := cmdTracegen(tinyWorld("-out", dir)); err != nil {
		t.Fatalf("tracegen: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(matches) != 54 {
		t.Errorf("trace files = %d, want 54 (%v)", len(matches), err)
	}
}

func TestCmdRenderWritesPNG(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.png")
	if err := cmdRender(tinyWorld("-level", "2", "-out", out)); err != nil {
		t.Fatalf("render: %v", err)
	}
	info, err := os.Stat(out)
	if err != nil || info.Size() == 0 {
		t.Errorf("png missing or empty: %v", err)
	}
}

func TestCmdRenderBadLevel(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.png")
	if err := cmdRender(tinyWorld("-level", "99", "-out", out)); err == nil {
		t.Error("out-of-range level should fail")
	}
}

func TestCmdExploreScript(t *testing.T) {
	if err := cmdExplore(tinyWorld("-moves", "in-nw,in-se,out")); err != nil {
		t.Fatalf("explore: %v", err)
	}
	if err := cmdExplore(tinyWorld("-moves", "sideways")); err == nil {
		t.Error("unknown move should fail")
	}
}

func TestCmdBenchListAndUnknown(t *testing.T) {
	if err := cmdBench([]string{"-list"}); err != nil {
		t.Fatalf("bench -list: %v", err)
	}
	if err := cmdBench(tinyWorld("no-such-experiment")); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestCmdBenchRunsCheapExperiment(t *testing.T) {
	if err := cmdBench(tinyWorld("fig9")); err != nil {
		t.Fatalf("bench fig9: %v", err)
	}
}

func TestCmdScrapeValidatesExposition(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("# HELP up 1 while serving.\n# TYPE up gauge\nup 1\n"))
	}))
	defer good.Close()
	if err := cmdScrape([]string{"-url", good.URL}); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("up 1\n")) // sample without HELP/TYPE
	}))
	defer bad.Close()
	if err := cmdScrape([]string{"-url", bad.URL}); err == nil {
		t.Error("invalid exposition accepted")
	}

	failing := httptest.NewServer(http.NotFoundHandler())
	defer failing.Close()
	if err := cmdScrape([]string{"-url", failing.URL}); err == nil {
		t.Error("404 endpoint accepted")
	}
}

func TestCmdServeRejectsBadLogLevel(t *testing.T) {
	if err := cmdServe(tinyWorld("-log-level", "loud")); err == nil {
		t.Error("unknown log level should fail before building the world")
	}
}

// TestServeUntilDoneShutsDownOnSignal drives the serve loop's shutdown
// path with a cancelable context standing in for SIGTERM: the loop must
// drain the http.Server and return nil so deferred cleanup (the final
// snapshot in cmdServe) runs.
func TestServeUntilDoneShutsDownOnSignal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveUntilDone(ctx, httpSrv, ln) }()

	// The server really serves before the "signal" arrives.
	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatalf("server not serving: %v", err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil (clean exit)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntilDone did not return after the signal")
	}
}

// TestServeUntilDonePropagatesServeError: a listener failing under the
// server must surface as a non-nil error (non-zero exit), not be mistaken
// for a clean shutdown.
func TestServeUntilDonePropagatesServeError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // Serve on a closed listener fails immediately
	httpSrv := &http.Server{Handler: http.NewServeMux()}
	if err := serveUntilDone(context.Background(), httpSrv, ln); err == nil {
		t.Fatal("serve error swallowed; want non-nil")
	}
}

// TestServeUntilDoneDrainsOpenStreams pins the shutdown shape cmdServe
// wires for push: a long-lived streaming handler is an in-flight request
// that http.Server.Shutdown would wait on past its bound, so an
// on-shutdown hook (cmdServe registers the push registry's Close) must
// end the stream and let SIGTERM exit clean with the stream attached.
func TestServeUntilDoneDrainsOpenStreams(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	streamEnd := make(chan struct{})
	httpSrv := newHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		select {
		case <-streamEnd:
		case <-r.Context().Done():
		}
	}))
	var once sync.Once
	httpSrv.RegisterOnShutdown(func() { once.Do(func() { close(streamEnd) }) })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveUntilDone(ctx, httpSrv, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatalf("stream not served: %v", err)
	}
	defer resp.Body.Close() // headers received, body (the stream) still open

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown with an open stream returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung on the open stream")
	}
}

// TestNewHTTPServerTimeouts pins the serve deployment's protective
// timeouts: header reads and idle keep-alives are bounded, while
// WriteTimeout stays zero — a global write deadline would kill every
// long-lived /stream push response (those use per-write deadlines via
// http.ResponseController instead).
func TestNewHTTPServerTimeouts(t *testing.T) {
	s := newHTTPServer(http.NewServeMux())
	if s.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slowloris clients can hold connections open forever")
	}
	if s.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections are never reaped")
	}
	if s.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, want 0 (a global write deadline kills push streams)", s.WriteTimeout)
	}
}

// TestServeRejectsSlowlorisHeaders: a client that opens a connection and
// dribbles a partial request header must be cut off once
// ReadHeaderTimeout elapses, not hold the connection open indefinitely —
// and the serve loop must still shut down cleanly afterwards.
func TestServeRejectsSlowlorisHeaders(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := newHTTPServer(http.NewServeMux())
	httpSrv.ReadHeaderTimeout = 150 * time.Millisecond // the test's patience, same mechanism
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveUntilDone(ctx, httpSrv, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A request line and one header, never finished: the zero-value server
	// this test guards against would wait forever for the blank line.
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a half-sent request header")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server still holding the slowloris connection after 10s")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("connection dropped after %v, want within the header timeout's order", elapsed)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown after slowloris returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntilDone did not return after the signal")
	}
}
