package forecache

import (
	"fmt"
	"log/slog"
	"time"

	"forecache/internal/array"
	"forecache/internal/backend"
	"forecache/internal/core"
	"forecache/internal/eval"
	"forecache/internal/modis"
	"forecache/internal/obs"
	"forecache/internal/persist"
	"forecache/internal/phase"
	"forecache/internal/prefetch"
	"forecache/internal/push"
	"forecache/internal/recommend"
	"forecache/internal/server"
	"forecache/internal/sig"
	"forecache/internal/study"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// Re-exported core types so downstream code can use the facade alone.
type (
	// Coord addresses one data tile (zoom level, row, column).
	Coord = tile.Coord
	// Tile is one data tile with its signature metadata.
	Tile = tile.Tile
	// Pyramid is the materialized set of zoom levels and tiles.
	Pyramid = tile.Pyramid
	// Trace is one recorded user session.
	Trace = trace.Trace
	// Request is one tile request within a trace.
	Request = trace.Request
	// Move is one interface action (pan / zoom in / zoom out).
	Move = trace.Move
	// Phase is the user's analysis phase.
	Phase = trace.Phase
	// Engine is a per-session middleware instance (prediction engine +
	// cache manager + DBMS adapter).
	Engine = core.Engine
	// Response reports one served tile request.
	Response = core.Response
	// LatencyModel holds the hit/miss service times.
	LatencyModel = backend.LatencyModel
	// Harness runs the paper's experiments.
	Harness = eval.Harness
	// Server is the HTTP middleware front door.
	Server = server.Server
	// Scheduler is the shared asynchronous prefetch pipeline.
	Scheduler = prefetch.Scheduler
	// ShardedScheduler is the prefetch pipeline fanned out over N
	// independent scheduler shards behind a consistent-hash router
	// (MiddlewareConfig.Shards > 1).
	ShardedScheduler = prefetch.ShardedScheduler
	// Pipeline is the scheduler surface the server consumes, satisfied by
	// both Scheduler and ShardedScheduler (Server.Scheduler returns it).
	Pipeline = prefetch.Pipeline
	// PrefetchStats snapshots scheduler activity (queued, coalesced,
	// cancelled, completed, queue latency, ...).
	PrefetchStats = prefetch.Stats
	// FeedbackCollector fits the position-utility curve and the
	// per-(phase, model) consumption rates from observed cache outcomes
	// (UtilityLearning, AdaptiveAllocation).
	FeedbackCollector = prefetch.FeedbackCollector
	// AdaptivePolicy re-splits the prefetch budget per phase from observed
	// consumption (AdaptiveAllocation).
	AdaptivePolicy = core.AdaptivePolicy
)

// Dataset bundles a built world: the array database, the NDSI array, the
// tile pyramid with signatures, and the signature computer.
type Dataset struct {
	DB         *array.Database
	NDSI       *array.Array
	Pyramid    *tile.Pyramid
	Signatures *sig.Computer
	Attr       string
}

// WorldConfig sizes the synthetic MODIS world.
type WorldConfig struct {
	// Seed makes the world reproducible.
	Seed int64
	// Size is the raw grid resolution (cells per side). Default 512.
	Size int
	// TileSize is the per-side cell count of every tile. Default 16.
	TileSize int
	// CodebookTiles is how many tiles train the SIFT visual-word codebook.
	// Default 80.
	CodebookTiles int
}

func (c WorldConfig) withDefaults() WorldConfig {
	if c.Size <= 0 {
		c.Size = 512
	}
	if c.TileSize <= 0 {
		c.TileSize = 16
	}
	if c.CodebookTiles <= 0 {
		c.CodebookTiles = 80
	}
	return c
}

// BuildWorld runs the full dataset pipeline of paper §2.3 and §5.1:
// synthesize the MODIS bands, compute NDSI through the array engine
// (Query 1), build the zoom-level pyramid, train the signature codebook on
// the pyramid's own tiles, and attach all four signatures to every tile.
func BuildWorld(cfg WorldConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	db := array.NewDatabase()
	ndsi, err := modis.BuildWorld(db, cfg.Seed, cfg.Size)
	if err != nil {
		return nil, fmt.Errorf("forecache: build world: %w", err)
	}
	return buildDataset(db, ndsi, "ndsi_avg", cfg.TileSize, cfg.CodebookTiles, cfg.Seed)
}

// BuildPyramid wraps any 2-D array into a signed tile pyramid: the route
// for non-MODIS datasets (e.g. the time-series example). attr selects the
// attribute signatures describe; sigCfg.Attr is overridden to match.
func BuildPyramid(a *array.Array, tileSize int, sigCfg sig.Config, codebookTiles int) (*Dataset, error) {
	db := array.NewDatabase()
	db.Store(a.Schema().Name, a)
	if codebookTiles <= 0 {
		codebookTiles = 80
	}
	return buildDatasetWith(db, a, sigCfg, tileSize, codebookTiles)
}

func buildDataset(db *array.Database, a *array.Array, attr string, tileSize, codebookTiles int, seed int64) (*Dataset, error) {
	sigCfg := sig.DefaultConfig(attr)
	sigCfg.Seed = seed
	return buildDatasetWith(db, a, sigCfg, tileSize, codebookTiles)
}

func buildDatasetWith(db *array.Database, a *array.Array, sigCfg sig.Config, tileSize, codebookTiles int) (*Dataset, error) {
	pyr, err := tile.Build(a, tile.Params{TileSize: tileSize, Agg: array.AggAvg})
	if err != nil {
		return nil, fmt.Errorf("forecache: build pyramid: %w", err)
	}
	comp := sig.NewComputer(sigCfg)
	comp.TrainCodebook(pyr.SampleTiles(codebookTiles))
	pyr.ComputeMetadata(comp.Compute)
	return &Dataset{DB: db, NDSI: a, Pyramid: pyr, Signatures: comp, Attr: sigCfg.Attr}, nil
}

// SimulateStudy reproduces the paper's 18-user, 3-task study over this
// dataset, returning 54 ground-truth-labeled traces (§5.3).
func (d *Dataset) SimulateStudy(seed int64) []*trace.Trace {
	return study.NewSimulator(d.Pyramid, d.Attr).RunStudy(seed)
}

// Harness returns an experiment harness over the dataset and traces.
func (d *Dataset) Harness(traces []*trace.Trace) *eval.Harness {
	return &eval.Harness{Pyr: d.Pyramid, Attr: d.Attr, Traces: traces}
}

// MiddlewareConfig assembles a production middleware engine.
type MiddlewareConfig struct {
	// K is the prefetch budget in tiles. Default 5 (the paper's headline k).
	K int
	// D is the prediction distance in moves. Default 1.
	D int
	// HistoryLen is the session history window. Default 3.
	HistoryLen int
	// ABOrder is the Markov chain order. Default 3 (the paper's best).
	ABOrder int
	// SBSignatures restricts the signature model. Default SIFT only.
	SBSignatures []string
	// Latency overrides the hit/miss service times. Default: the paper's
	// measured 19.5 ms / 984 ms.
	Latency LatencyModel
	// Clock accounts simulated latency; nil disables accounting.
	Clock backend.Clock
	// MaxClassifierRequests caps SVM training size. Default 800.
	MaxClassifierRequests int

	// AsyncPrefetch routes every server session's prefetching through one
	// shared asynchronous scheduler (submit-and-return with cross-session
	// coalescing) instead of fetching inline on the response path. Only
	// NewServer honors this; engines built by NewMiddleware stay
	// synchronous so the eval harness and paper experiments remain
	// deterministic.
	AsyncPrefetch bool
	// Push enables continuous push delivery (Khameleon-style): the server
	// mounts GET /stream — one long-lived SSE response per session — and
	// every completed prefetch for a stream-attached session is written to
	// it as a framed tile payload with its coordinate, model attribution and
	// score, so the client holds the tile before ever asking for it. The
	// scheduler's admission control grows a bandwidth-aware term: a queued
	// entry's utility decays by the extra queue-rank × per-session drain
	// delay (estimated bytes over the stream's measured throughput), so
	// slow-draining connections lose admission fights they would have won on
	// score alone. Sessions without an attached stream are untouched, and
	// with Push off the deployment is bit-for-bit the pull middleware.
	// Requires AsyncPrefetch (frames are produced by the shared scheduler);
	// construction fails otherwise. Only NewServer honors this.
	Push bool
	// Shards splits the serving tier into N independent shards behind a
	// consistent-hash router keyed on session id: the server's session
	// table, TTL/LRU sweep and retired-stats baseline become per-shard
	// (one mutex each), and with AsyncPrefetch the scheduler fans out into
	// per-shard worker pools and queues — while cross-session single-flight
	// stays deployment-wide, so N shards wanting one tile still cost one
	// DBMS fetch. Shared learned state (feedback, allocation, hotspot)
	// also stays deployment-wide; /stats and /metrics aggregate across
	// shards with monotone counters. Default 1, which is bit-for-bit the
	// unsharded deployment. Only NewServer honors this.
	Shards int
	// PrefetchWorkers sizes the scheduler's worker pool (the concurrent
	// DBMS fetch budget); with Shards > 1 this is the deployment-wide
	// budget, divided ceil(Workers/Shards) per shard. Default 4.
	PrefetchWorkers int
	// PrefetchQueue caps queued prefetch entries per session. Default 64.
	PrefetchQueue int
	// GlobalQueueBudget caps queued prefetch entries across ALL sessions.
	// At saturation the scheduler sheds the lowest-utility queued entry
	// (utility = model confidence decayed by queue age and batch position)
	// to admit higher-utility newcomers, so one session's stale backlog
	// cannot crowd out another's fresh predictions. Default 1024; negative
	// disables the global budget (and the Pressure signal with it).
	GlobalQueueBudget int
	// DecayHalfLife is the queue age at which a pending prefetch entry's
	// utility halves (Khameleon-style diminishing returns): predictions
	// made for a view the user has already left lose admission-control
	// fights against fresh ones. Default 2s; negative disables age decay.
	DecayHalfLife time.Duration
	// AdaptiveK makes every async session engine respond to scheduler
	// backpressure: as the global queue saturates (Pressure → 1) engines
	// shrink their per-request prefetch budget from K down toward 1, and
	// restore it when the queue drains. Requires AsyncPrefetch.
	AdaptiveK bool
	// FairShare scopes AdaptiveK's backpressure per session: each engine
	// shrinks by how far ITS session's share of the pending queue exceeds
	// the fair share 1/N, so one flooding session's budget collapses first
	// while light sessions keep prefetching at full K. Requires AdaptiveK.
	FairShare bool
	// UtilityLearning closes the prediction-quality loop: every session's
	// cache attributes each prefetched tile's fate (consumed vs evicted
	// unconsumed) to the model, batch position and predicted phase that
	// prefetched it, a shared FeedbackCollector fits the position-utility
	// curve from those outcomes online (EWMA hit rate by position), and
	// the scheduler's admission control discounts queued entries by the
	// learned curve instead of the static 0.85^position guess. The curve
	// is exported under /stats and /metrics. Requires AsyncPrefetch.
	UtilityLearning bool
	// AdaptiveAllocation closes the budget-allocation loop: the same
	// per-(phase, model) consumption outcomes drive a shared
	// core.AdaptivePolicy that re-splits each session's prefetch budget k
	// per phase toward the model whose prefetches actually get consumed —
	// the registry's prior table (the paper's §5.4.3, extended with a
	// hotspot column when Hotspot is on) becomes the prior, every model
	// keeps a floor share for exploration, and shares move with hysteresis
	// so the split cannot thrash. The learned shares are exported under
	// /stats ("allocation") and /metrics (forecache_allocation_share).
	// Works with or without AsyncPrefetch (outcomes flow through the
	// feedback loop in both modes); independent of UtilityLearning.
	AdaptiveAllocation bool
	// AllocationFloor, AllocationWarmup and AllocationMaxStep tune the
	// adaptive allocation policy (core.AdaptiveConfig): the minimum budget
	// share every model keeps once shares move (default 0.1), the
	// per-(phase, model) outcome count below which a phase keeps the prior
	// split (default 30), and the per-reallocation hysteresis bound on the
	// fastest-moving share (default 0.02). Zero means default; out-of-range
	// values (floor outside [0,1), negative warmup, step outside (0,1])
	// are construction errors. Only meaningful with AdaptiveAllocation.
	AllocationFloor   float64
	AllocationWarmup  int
	AllocationMaxStep float64
	// Hotspot registers the third recommender: the online, training-free
	// cross-session hotspot model. One deployment-wide, lock-striped
	// counter table learns which tiles the whole population recently
	// consumed (per zoom level, EWMA-decayed, fed from the same cache
	// outcomes the feedback loops drain) and every session's engine ranks
	// candidates against it. The prior allocation table grows a hotspot
	// column (one slot per phase at k >= 3), and with AdaptiveAllocation
	// the per-phase split becomes genuinely 3-way.
	Hotspot bool
	// Artifacts supplies an already-trained artifact bundle (Dataset.Train)
	// so construction performs no training at all: NewMiddleware and
	// NewServer reuse the bundle's shared recommender artifacts and phase
	// classifier. The bundle must come from the same Dataset and a config
	// with the same model shape (ABOrder, SBSignatures, Hotspot).
	Artifacts *Artifacts
	// MetricsEndpoint registers a dependency-free Prometheus text-format
	// GET /metrics endpoint on the server: scheduler counters, global and
	// per-session backpressure, aggregate cache hit rates, the learned
	// utility curve, and the adaptive allocation shares. With Tracing the
	// payload grows latency histograms for every pipeline stage.
	MetricsEndpoint bool
	// Tracing threads one obs.Pipeline through the whole deployment:
	// every /tile request gets a trace id (echoed as X-Trace-ID) with a
	// per-span breakdown (session resolution, cache lookup, backend fetch,
	// prefetch submission), the slowest retained traces are served under
	// GET /debug/traces, and /metrics (with MetricsEndpoint) exports
	// latency histograms for request outcomes, scheduler queue wait,
	// backend fetches and prefetch lead time. Only NewServer honors this;
	// NewMiddleware engines stay uninstrumented so the eval harness
	// measures the paper's numbers, not the telemetry's.
	Tracing bool
	// TraceBuffer caps the in-memory ring of completed request traces
	// behind /debug/traces. 0 = default 256; negative keeps histograms but
	// disables trace retention (and the endpoint with it). Only meaningful
	// with Tracing.
	TraceBuffer int
	// Pprof registers Go's net/http/pprof profiling handlers under
	// GET /debug/pprof/ on the server. Off by default: profiles expose
	// internals and cost CPU while streaming, so production deployments
	// opt in deliberately.
	Pprof bool
	// Logger receives the pipeline's structured request logs (one Debug
	// line per finished trace, carrying the trace id). nil logs nothing.
	// Only meaningful with Tracing.
	Logger *slog.Logger
	// StateDir enables warm restarts: the deployment's learned state — the
	// FeedbackCollector's position-utility curve and per-(phase, model)
	// allocation rates, the AdaptivePolicy's per-phase shares, the Hotspot
	// model's counter table (whichever of them the config enables) — is
	// snapshotted into this directory on an interval and at Close, and
	// restored by the next NewServer before the first session is built, so
	// a deploy or crash does not re-pay the warmup tax. Snapshots are
	// versioned, checksummed and written atomically; a damaged section
	// cold-starts only its own family. Empty disables persistence. Only
	// NewServer honors this.
	StateDir string
	// SnapshotInterval is the background snapshot cadence. 0 means the 30s
	// default; negative disables the interval ticker (a final snapshot is
	// still written at Close). Only meaningful with StateDir.
	SnapshotInterval time.Duration
	// SharedTiles > 0 wraps the server's DBMS in a cross-session
	// backend.SharedPool of that many tiles, so popular tiles are fetched
	// once and reused by every session. Only NewServer honors this.
	SharedTiles int
	// BinaryTiles enables zero-recompute tile serving: a deployment-wide
	// encoded-payload cache memoizes each tile's wire bytes per (coord,
	// format, compression), /tile content-negotiates the binary codec
	// ("Accept: application/x-forecache-tile") and gzip compression, and
	// push frames embed the cached JSON body instead of re-marshaling the
	// tile per attached stream. Clients that send no Accept header still
	// get byte-identical legacy JSON; off (the default), the serving paths
	// are bit-for-bit the per-request-marshal deployment. Only NewServer
	// honors this.
	BinaryTiles bool
	// EncodedCacheBudget caps the encoded-payload cache in bytes. 0 means
	// the 64 MiB default. Only meaningful with BinaryTiles.
	EncodedCacheBudget int64
	// MaxSessions caps live server sessions; the least recently used
	// session is evicted past the cap. 0 = unlimited.
	MaxSessions int
	// SessionTTL evicts server sessions idle longer than this. 0 = never.
	SessionTTL time.Duration
}

func (c MiddlewareConfig) withDefaults() MiddlewareConfig {
	if c.K <= 0 {
		c.K = 5
	}
	if c.D <= 0 {
		c.D = 1
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 3
	}
	if c.ABOrder <= 0 {
		c.ABOrder = 3
	}
	if len(c.SBSignatures) == 0 {
		c.SBSignatures = []string{sig.NameSIFT}
	}
	if c.Latency == (LatencyModel{}) {
		c.Latency = backend.DefaultLatency()
	}
	if c.MaxClassifierRequests <= 0 {
		c.MaxClassifierRequests = 800
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.GlobalQueueBudget == 0 {
		c.GlobalQueueBudget = 1024
	} else if c.GlobalQueueBudget < 0 {
		c.GlobalQueueBudget = 0 // unlimited
	}
	if c.DecayHalfLife == 0 {
		c.DecayHalfLife = 2 * time.Second
	} else if c.DecayHalfLife < 0 {
		c.DecayHalfLife = 0 // disabled
	}
	return c
}

// Artifacts bundles the immutable, shareable output of one training pass:
// the registry-built recommender artifact set (the trained Kneser–Ney
// Markov chain, the SB stamp, the shared hotspot counter table when the
// config registers one) and the fitted SVM phase classifier. One bundle is
// safely shared by every session engine of a deployment — and, via
// MiddlewareConfig.Artifacts, by several middleware constructions, which
// then perform no training at all.
type Artifacts struct {
	set *recommend.Set
	cls *phase.Classifier
}

// Models returns the bundle's recommender names in registry order.
func (a *Artifacts) Models() []string { return a.set.Names() }

// trainHook, when non-nil, is invoked with the artifact name (the Markov
// model's name, "classifier") each time an artifact is actually trained.
// It is a test seam: the server tests use it to prove that session
// creation — and construction from a supplied Artifacts bundle — performs
// zero training (see TestServerTrainsModelsOnce).
var trainHook func(artifact string)

// registry composes the deployment's recommender registry from the config:
// the paper's AB+SB pair, plus the online hotspot column when cfg.Hotspot
// is set. This is the single site deciding which recommenders a deployment
// runs; everything downstream (model sets, the prior allocation table, the
// adaptive split, /stats and /metrics labels) follows the registry.
func (d *Dataset) registry(cfg MiddlewareConfig) (*recommend.Registry, error) {
	var hs *recommend.HotspotConfig
	if cfg.Hotspot {
		hs = &recommend.HotspotConfig{}
	}
	return recommend.NewRegistry(recommend.DefaultSpecs(cfg.ABOrder, cfg.SBSignatures, hs)...)
}

// Train runs the deployment's one training pass over the study traces:
// every trace-trained registry artifact (the Markov chain) plus the phase
// classifier. The returned bundle can be passed to any number of
// NewMiddleware / NewServer calls via MiddlewareConfig.Artifacts, which
// then skip training entirely.
func (d *Dataset) Train(train []*trace.Trace, cfg MiddlewareConfig) (*Artifacts, error) {
	cfg = cfg.withDefaults()
	return d.train(train, cfg)
}

func (d *Dataset) train(train []*trace.Trace, cfg MiddlewareConfig) (*Artifacts, error) {
	reg, err := d.registry(cfg)
	if err != nil {
		return nil, fmt.Errorf("forecache: %w", err)
	}
	set, err := reg.Build(recommend.Env{Tiles: d.Pyramid, Traces: train, TrainHook: trainHook})
	if err != nil {
		return nil, fmt.Errorf("forecache: %w", err)
	}
	reqs := phase.Requests(train)
	if len(reqs) > cfg.MaxClassifierRequests {
		reqs = reqs[:cfg.MaxClassifierRequests]
	}
	if trainHook != nil {
		trainHook("classifier")
	}
	cls, err := phase.Train(reqs, phase.TrainConfig{})
	if err != nil {
		return nil, fmt.Errorf("forecache: train phase classifier: %w", err)
	}
	return &Artifacts{set: set, cls: cls}, nil
}

// artifacts returns the bundle the construction should use: the supplied
// one (no training, after checking it carries exactly the models the
// config asks for — silently serving a different model set than the
// operator configured would be worse than retraining) or a fresh training
// pass over the traces.
func (d *Dataset) artifacts(train []*trace.Trace, cfg MiddlewareConfig) (*Artifacts, error) {
	if cfg.Artifacts == nil {
		return d.train(train, cfg)
	}
	reg, err := d.registry(cfg)
	if err != nil {
		return nil, fmt.Errorf("forecache: %w", err)
	}
	want := make([]string, 0, len(reg.Specs()))
	for _, s := range reg.Specs() {
		want = append(want, s.Name)
	}
	got := cfg.Artifacts.Models()
	match := len(got) == len(want)
	for i := 0; match && i < len(want); i++ {
		match = got[i] == want[i]
	}
	if !match {
		return nil, fmt.Errorf("forecache: supplied artifacts carry models %v but the config (ABOrder/SBSignatures/Hotspot) expects %v", got, want)
	}
	return cfg.Artifacts, nil
}

// NewMiddleware builds the paper's full two-level middleware for one
// session: phase classifier and Markov chain trained on the given traces
// (or reused from cfg.Artifacts, in which case no training happens),
// SIFT-based SB model over the dataset's signatures, the registry's
// allocation table, cache manager and DBMS adapter. The engine prefetches
// synchronously (the deterministic mode the eval harness replays); the
// asynchronous shared pipeline is a NewServer concern.
func (d *Dataset) NewMiddleware(train []*trace.Trace, cfg MiddlewareConfig) (*core.Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	db := backend.NewDBMS(d.Pyramid, cfg.Latency, cfg.Clock)
	arts, err := d.artifacts(train, cfg)
	if err != nil {
		return nil, err
	}
	var opts []core.Option
	if hs := arts.set.Hotspot(); hs != nil {
		opts = append(opts, core.WithConsumption(hs))
	}
	return d.assembleEngine(db, arts, cfg, opts...)
}

// validate rejects nonsensical tuning values with a construction error
// instead of serving with silently-clamped settings.
func (c MiddlewareConfig) validate() error {
	cfg := core.AdaptiveConfig{Floor: c.AllocationFloor, Warmup: c.AllocationWarmup, MaxStep: c.AllocationMaxStep}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("forecache: %w", err)
	}
	return nil
}

// assembleEngine builds one two-level engine over an existing store and an
// already-trained artifact bundle, so several sessions can share a DBMS
// adapter, pool, scheduler, classifier and every shared recommender
// artifact. Only the cheap per-session state is fresh: the SB recommender
// (its ROI tracker is mutable), the cache manager and the history window.
// Models and the static allocation policy both come from the registry set,
// so the learned split's prior and model list can never diverge from the
// table the engines fall back to.
func (d *Dataset) assembleEngine(store backend.Store, arts *Artifacts, cfg MiddlewareConfig, opts ...core.Option) (*core.Engine, error) {
	return core.NewEngineFromSet(store, arts.cls, arts.set,
		core.Config{K: cfg.K, D: cfg.D, HistoryLen: cfg.HistoryLen}, opts...)
}

// NewServer wraps the dataset in an HTTP middleware server; each session
// gets its own engine, but all sessions share one DBMS adapter — optionally
// behind a cross-session tile pool (SharedTiles) and an asynchronous
// prefetch scheduler (AsyncPrefetch), the Figure 5 deployment grown to
// multi-user scale. Call Close on the returned server to stop the
// scheduler's workers.
//
// The recommender registry's shared artifacts (the Markov chain, the
// hotspot counter table) and the phase classifier are trained/built
// exactly once, here — or reused from cfg.Artifacts — and shared by every
// session engine: creating the 2nd..Nth session performs no training and
// is O(1). Construction returns an error for invalid tuning values or a
// failed training pass. The scheduler is sized by PrefetchWorkers /
// PrefetchQueue / GlobalQueueBudget / DecayHalfLife; AdaptiveK closes the
// backpressure loop from its Pressure signal back into each engine's
// prefetch budget (per-session with FairShare), UtilityLearning closes
// the prediction-quality loop from cache outcomes back into admission
// control, AdaptiveAllocation closes the budget-allocation loop from the
// same outcomes back into the per-phase model split (2-way, or 3-way with
// Hotspot), and MetricsEndpoint exposes all of it as Prometheus text
// under GET /metrics. Tracing adds end-to-end request traces (X-Trace-ID,
// GET /debug/traces) and per-stage latency histograms to /metrics; Pprof
// adds Go's profiling handlers under GET /debug/pprof/.
func (d *Dataset) NewServer(train []*trace.Trace, cfg MiddlewareConfig) (*server.Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	meta := server.Meta{
		Levels:   d.Pyramid.NumLevels(),
		TileSize: d.Pyramid.TileSize(),
		Attrs:    d.Pyramid.Attrs(),
	}
	db := backend.NewDBMS(d.Pyramid, cfg.Latency, cfg.Clock)
	var store backend.Store = db
	if cfg.SharedTiles > 0 {
		store = backend.NewSharedPool(db, cfg.SharedTiles)
	}
	arts, err := d.artifacts(train, cfg)
	if err != nil {
		return nil, err
	}
	// The feedback collector exists whenever some loop consumes outcomes:
	// UtilityLearning prices scheduler admission with it (async only),
	// AdaptiveAllocation re-splits the budget with it (either mode).
	var sched prefetch.Pipeline
	// submitterFor binds each session engine to its home scheduler shard
	// once at construction (the routing hash is paid per session, not per
	// request); with one shard every session binds to the same scheduler.
	var submitterFor func(session string) core.Submitter
	var fc *prefetch.FeedbackCollector
	opts := []server.Option{server.WithShards(cfg.Shards)}
	if (cfg.UtilityLearning && cfg.AsyncPrefetch) || cfg.AdaptiveAllocation {
		fc = prefetch.NewFeedbackCollector(cfg.K)
	}
	// One AdaptivePolicy is shared by every session engine, so the learned
	// per-phase split reflects the whole deployment's traffic and the
	// server can export it once (/stats, /metrics). Its model list and
	// prior both come from the registry set, so a third registered
	// recommender makes the split 3-way with no further wiring. Built
	// before the scheduler so no worker pool leaks on a construction error.
	var adaptive *core.AdaptivePolicy
	if cfg.AdaptiveAllocation {
		base, err := core.NewRegistryPolicy(arts.set.Columns())
		if err != nil {
			return nil, fmt.Errorf("forecache: adaptive allocation: %w", err)
		}
		adaptive, err = core.NewAdaptivePolicy(base, arts.set.Names(), fc, core.AdaptiveConfig{
			Floor:   cfg.AllocationFloor,
			Warmup:  cfg.AllocationWarmup,
			MaxStep: cfg.AllocationMaxStep,
		})
		if err != nil {
			return nil, fmt.Errorf("forecache: adaptive allocation: %w", err)
		}
		opts = append(opts, server.WithAllocation(adaptive))
	}
	// The observability pipeline is one shared instance: the scheduler
	// feeds its queue-wait and backend-fetch histograms, every session
	// engine feeds cache lead times and span timings, and the server
	// serves the result (/metrics histograms, /debug/traces).
	var pipe *obs.Pipeline
	if cfg.Tracing {
		pipe = obs.NewPipeline(obs.Config{TraceCapacity: cfg.TraceBuffer, Logger: cfg.Logger})
		opts = append(opts, server.WithObs(pipe))
	}
	if cfg.Pprof {
		opts = append(opts, server.WithPprof())
	}
	// The encoded-payload cache is deployment-wide: the /tile handler and
	// the push registry share it, so the pull and push paths serve the same
	// memoized bytes and a tile is encoded once however it leaves the
	// server. The encode-duration hook is nil-receiver safe when untraced.
	var encCache *tile.EncodedCache
	if cfg.BinaryTiles {
		encCache = tile.NewEncodedCache(cfg.EncodedCacheBudget, pipe.ObserveTileEncode)
		opts = append(opts, server.WithEncodedTiles(encCache))
	}
	if cfg.Push && !cfg.AsyncPrefetch {
		return nil, fmt.Errorf("forecache: Push requires AsyncPrefetch (push frames are produced by the shared scheduler)")
	}
	if cfg.AsyncPrefetch {
		var util *prefetch.FeedbackCollector
		if cfg.UtilityLearning {
			util = fc
		}
		pcfg := prefetch.Config{
			Workers:         cfg.PrefetchWorkers,
			QueuePerSession: cfg.PrefetchQueue,
			GlobalQueue:     cfg.GlobalQueueBudget,
			DecayHalfLife:   cfg.DecayHalfLife,
			Utility:         util,
			Obs:             pipe,
		}
		// One registry is both the scheduler's push sink (frame production)
		// and the server's /stream transport (frame drain), so the two sides
		// can never disagree about which sessions have live streams.
		if cfg.Push {
			reg := push.NewRegistry(push.Config{Obs: pipe, Encoded: encCache})
			pcfg.Push = reg
			opts = append(opts, server.WithPush(reg))
		}
		if cfg.Shards > 1 {
			ss := prefetch.NewShardedScheduler(store, pcfg, cfg.Shards)
			sched = ss
			submitterFor = func(session string) core.Submitter { return ss.Shard(session) }
		} else {
			sc := prefetch.NewScheduler(store, pcfg)
			sched = sc
			submitterFor = func(string) core.Submitter { return sc }
		}
		opts = append(opts, server.WithScheduler(sched))
	}
	if cfg.MetricsEndpoint {
		opts = append(opts, server.WithMetrics())
	}
	if cfg.MaxSessions > 0 {
		opts = append(opts, server.WithSessionLimit(cfg.MaxSessions))
	}
	if cfg.SessionTTL > 0 {
		opts = append(opts, server.WithSessionTTL(cfg.SessionTTL))
	}
	hotspot := arts.set.Hotspot()
	// Warm restart: restore the learned-state families from the snapshot
	// directory BEFORE the first session engine is built, then start the
	// interval ticker. The store is handed to the server so Close writes
	// the final snapshot and /stats + /metrics report snapshot health.
	if cfg.StateDir != "" {
		var families []persist.Family
		if fc != nil {
			families = append(families, persist.Family{
				Name: "feedback", Version: prefetch.FeedbackStateVersion,
				Export: fc.ExportState, Import: fc.ImportState,
			})
		}
		if adaptive != nil {
			families = append(families, persist.Family{
				Name: "allocation", Version: core.AllocationStateVersion,
				Export: adaptive.ExportState, Import: adaptive.ImportState,
			})
		}
		if hotspot != nil {
			families = append(families, persist.Family{
				Name: "hotspot", Version: recommend.HotspotStateVersion,
				Export: hotspot.ExportState, Import: hotspot.ImportState,
			})
		}
		if len(families) > 0 {
			store, err := persist.NewStore(persist.Config{
				Dir:      cfg.StateDir,
				Interval: cfg.SnapshotInterval,
				Logger:   cfg.Logger,
			}, families...)
			if err != nil {
				if sched != nil {
					sched.Close() // don't leak the worker pool on a construction error
				}
				return nil, fmt.Errorf("forecache: %w", err)
			}
			store.Restore()
			store.Start()
			opts = append(opts, server.WithPersist(store))
		}
	}
	factory := func(session string) (*core.Engine, error) {
		var engOpts []core.Option
		if sched != nil {
			engOpts = append(engOpts, core.WithScheduler(submitterFor(session), session))
			if cfg.AdaptiveK {
				engOpts = append(engOpts, core.WithAdaptiveK())
				if cfg.FairShare {
					engOpts = append(engOpts, core.WithFairShare())
				}
			}
		}
		if fc != nil {
			engOpts = append(engOpts, core.WithFeedback(fc))
		}
		if hotspot != nil {
			engOpts = append(engOpts, core.WithConsumption(hotspot))
		}
		if adaptive != nil {
			engOpts = append(engOpts, core.WithAdaptiveAllocation(adaptive))
		}
		if pipe != nil {
			engOpts = append(engOpts, core.WithObs(pipe))
		}
		return d.assembleEngine(store, arts, cfg, engOpts...)
	}
	return server.New(meta, factory, opts...), nil
}
