package forecache

import (
	"fmt"
	"time"

	"forecache/internal/array"
	"forecache/internal/backend"
	"forecache/internal/core"
	"forecache/internal/eval"
	"forecache/internal/modis"
	"forecache/internal/phase"
	"forecache/internal/prefetch"
	"forecache/internal/recommend"
	"forecache/internal/server"
	"forecache/internal/sig"
	"forecache/internal/study"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// Re-exported core types so downstream code can use the facade alone.
type (
	// Coord addresses one data tile (zoom level, row, column).
	Coord = tile.Coord
	// Tile is one data tile with its signature metadata.
	Tile = tile.Tile
	// Pyramid is the materialized set of zoom levels and tiles.
	Pyramid = tile.Pyramid
	// Trace is one recorded user session.
	Trace = trace.Trace
	// Request is one tile request within a trace.
	Request = trace.Request
	// Move is one interface action (pan / zoom in / zoom out).
	Move = trace.Move
	// Phase is the user's analysis phase.
	Phase = trace.Phase
	// Engine is a per-session middleware instance (prediction engine +
	// cache manager + DBMS adapter).
	Engine = core.Engine
	// Response reports one served tile request.
	Response = core.Response
	// LatencyModel holds the hit/miss service times.
	LatencyModel = backend.LatencyModel
	// Harness runs the paper's experiments.
	Harness = eval.Harness
	// Server is the HTTP middleware front door.
	Server = server.Server
	// Scheduler is the shared asynchronous prefetch pipeline.
	Scheduler = prefetch.Scheduler
	// PrefetchStats snapshots scheduler activity (queued, coalesced,
	// cancelled, completed, queue latency, ...).
	PrefetchStats = prefetch.Stats
	// FeedbackCollector fits the position-utility curve and the
	// per-(phase, model) consumption rates from observed cache outcomes
	// (UtilityLearning, AdaptiveAllocation).
	FeedbackCollector = prefetch.FeedbackCollector
	// AdaptivePolicy re-splits the prefetch budget per phase from observed
	// consumption (AdaptiveAllocation).
	AdaptivePolicy = core.AdaptivePolicy
)

// Dataset bundles a built world: the array database, the NDSI array, the
// tile pyramid with signatures, and the signature computer.
type Dataset struct {
	DB         *array.Database
	NDSI       *array.Array
	Pyramid    *tile.Pyramid
	Signatures *sig.Computer
	Attr       string
}

// WorldConfig sizes the synthetic MODIS world.
type WorldConfig struct {
	// Seed makes the world reproducible.
	Seed int64
	// Size is the raw grid resolution (cells per side). Default 512.
	Size int
	// TileSize is the per-side cell count of every tile. Default 16.
	TileSize int
	// CodebookTiles is how many tiles train the SIFT visual-word codebook.
	// Default 80.
	CodebookTiles int
}

func (c WorldConfig) withDefaults() WorldConfig {
	if c.Size <= 0 {
		c.Size = 512
	}
	if c.TileSize <= 0 {
		c.TileSize = 16
	}
	if c.CodebookTiles <= 0 {
		c.CodebookTiles = 80
	}
	return c
}

// BuildWorld runs the full dataset pipeline of paper §2.3 and §5.1:
// synthesize the MODIS bands, compute NDSI through the array engine
// (Query 1), build the zoom-level pyramid, train the signature codebook on
// the pyramid's own tiles, and attach all four signatures to every tile.
func BuildWorld(cfg WorldConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	db := array.NewDatabase()
	ndsi, err := modis.BuildWorld(db, cfg.Seed, cfg.Size)
	if err != nil {
		return nil, fmt.Errorf("forecache: build world: %w", err)
	}
	return buildDataset(db, ndsi, "ndsi_avg", cfg.TileSize, cfg.CodebookTiles, cfg.Seed)
}

// BuildPyramid wraps any 2-D array into a signed tile pyramid: the route
// for non-MODIS datasets (e.g. the time-series example). attr selects the
// attribute signatures describe; sigCfg.Attr is overridden to match.
func BuildPyramid(a *array.Array, tileSize int, sigCfg sig.Config, codebookTiles int) (*Dataset, error) {
	db := array.NewDatabase()
	db.Store(a.Schema().Name, a)
	if codebookTiles <= 0 {
		codebookTiles = 80
	}
	return buildDatasetWith(db, a, sigCfg, tileSize, codebookTiles)
}

func buildDataset(db *array.Database, a *array.Array, attr string, tileSize, codebookTiles int, seed int64) (*Dataset, error) {
	sigCfg := sig.DefaultConfig(attr)
	sigCfg.Seed = seed
	return buildDatasetWith(db, a, sigCfg, tileSize, codebookTiles)
}

func buildDatasetWith(db *array.Database, a *array.Array, sigCfg sig.Config, tileSize, codebookTiles int) (*Dataset, error) {
	pyr, err := tile.Build(a, tile.Params{TileSize: tileSize, Agg: array.AggAvg})
	if err != nil {
		return nil, fmt.Errorf("forecache: build pyramid: %w", err)
	}
	comp := sig.NewComputer(sigCfg)
	comp.TrainCodebook(pyr.SampleTiles(codebookTiles))
	pyr.ComputeMetadata(comp.Compute)
	return &Dataset{DB: db, NDSI: a, Pyramid: pyr, Signatures: comp, Attr: sigCfg.Attr}, nil
}

// SimulateStudy reproduces the paper's 18-user, 3-task study over this
// dataset, returning 54 ground-truth-labeled traces (§5.3).
func (d *Dataset) SimulateStudy(seed int64) []*trace.Trace {
	return study.NewSimulator(d.Pyramid, d.Attr).RunStudy(seed)
}

// Harness returns an experiment harness over the dataset and traces.
func (d *Dataset) Harness(traces []*trace.Trace) *eval.Harness {
	return &eval.Harness{Pyr: d.Pyramid, Attr: d.Attr, Traces: traces}
}

// MiddlewareConfig assembles a production middleware engine.
type MiddlewareConfig struct {
	// K is the prefetch budget in tiles. Default 5 (the paper's headline k).
	K int
	// D is the prediction distance in moves. Default 1.
	D int
	// HistoryLen is the session history window. Default 3.
	HistoryLen int
	// ABOrder is the Markov chain order. Default 3 (the paper's best).
	ABOrder int
	// SBSignatures restricts the signature model. Default SIFT only.
	SBSignatures []string
	// Latency overrides the hit/miss service times. Default: the paper's
	// measured 19.5 ms / 984 ms.
	Latency LatencyModel
	// Clock accounts simulated latency; nil disables accounting.
	Clock backend.Clock
	// MaxClassifierRequests caps SVM training size. Default 800.
	MaxClassifierRequests int

	// AsyncPrefetch routes every server session's prefetching through one
	// shared asynchronous scheduler (submit-and-return with cross-session
	// coalescing) instead of fetching inline on the response path. Only
	// NewServer honors this; engines built by NewMiddleware stay
	// synchronous so the eval harness and paper experiments remain
	// deterministic.
	AsyncPrefetch bool
	// PrefetchWorkers sizes the scheduler's worker pool (the concurrent
	// DBMS fetch budget). Default 4.
	PrefetchWorkers int
	// PrefetchQueue caps queued prefetch entries per session. Default 64.
	PrefetchQueue int
	// GlobalQueueBudget caps queued prefetch entries across ALL sessions.
	// At saturation the scheduler sheds the lowest-utility queued entry
	// (utility = model confidence decayed by queue age and batch position)
	// to admit higher-utility newcomers, so one session's stale backlog
	// cannot crowd out another's fresh predictions. Default 1024; negative
	// disables the global budget (and the Pressure signal with it).
	GlobalQueueBudget int
	// DecayHalfLife is the queue age at which a pending prefetch entry's
	// utility halves (Khameleon-style diminishing returns): predictions
	// made for a view the user has already left lose admission-control
	// fights against fresh ones. Default 2s; negative disables age decay.
	DecayHalfLife time.Duration
	// AdaptiveK makes every async session engine respond to scheduler
	// backpressure: as the global queue saturates (Pressure → 1) engines
	// shrink their per-request prefetch budget from K down toward 1, and
	// restore it when the queue drains. Requires AsyncPrefetch.
	AdaptiveK bool
	// FairShare scopes AdaptiveK's backpressure per session: each engine
	// shrinks by how far ITS session's share of the pending queue exceeds
	// the fair share 1/N, so one flooding session's budget collapses first
	// while light sessions keep prefetching at full K. Requires AdaptiveK.
	FairShare bool
	// UtilityLearning closes the prediction-quality loop: every session's
	// cache attributes each prefetched tile's fate (consumed vs evicted
	// unconsumed) to the model, batch position and predicted phase that
	// prefetched it, a shared FeedbackCollector fits the position-utility
	// curve from those outcomes online (EWMA hit rate by position), and
	// the scheduler's admission control discounts queued entries by the
	// learned curve instead of the static 0.85^position guess. The curve
	// is exported under /stats and /metrics. Requires AsyncPrefetch.
	UtilityLearning bool
	// AdaptiveAllocation closes the budget-allocation loop: the same
	// per-(phase, model) consumption outcomes drive a shared
	// core.AdaptivePolicy that re-splits each session's prefetch budget k
	// per phase toward the model whose prefetches actually get consumed —
	// the paper's fixed §5.4.3 table becomes the prior, every model keeps
	// a floor share for exploration, and shares move with hysteresis so
	// the split cannot thrash. The learned shares are exported under
	// /stats ("allocation") and /metrics (forecache_allocation_share).
	// Works with or without AsyncPrefetch (outcomes flow through the
	// feedback loop in both modes); independent of UtilityLearning.
	AdaptiveAllocation bool
	// MetricsEndpoint registers a dependency-free Prometheus text-format
	// GET /metrics endpoint on the server: scheduler counters, global and
	// per-session backpressure, aggregate cache hit rates, the learned
	// utility curve, and the adaptive allocation shares.
	MetricsEndpoint bool
	// SharedTiles > 0 wraps the server's DBMS in a cross-session
	// backend.SharedPool of that many tiles, so popular tiles are fetched
	// once and reused by every session. Only NewServer honors this.
	SharedTiles int
	// MaxSessions caps live server sessions; the least recently used
	// session is evicted past the cap. 0 = unlimited.
	MaxSessions int
	// SessionTTL evicts server sessions idle longer than this. 0 = never.
	SessionTTL time.Duration
}

func (c MiddlewareConfig) withDefaults() MiddlewareConfig {
	if c.K <= 0 {
		c.K = 5
	}
	if c.D <= 0 {
		c.D = 1
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 3
	}
	if c.ABOrder <= 0 {
		c.ABOrder = 3
	}
	if len(c.SBSignatures) == 0 {
		c.SBSignatures = []string{sig.NameSIFT}
	}
	if c.Latency == (LatencyModel{}) {
		c.Latency = backend.DefaultLatency()
	}
	if c.MaxClassifierRequests <= 0 {
		c.MaxClassifierRequests = 800
	}
	if c.GlobalQueueBudget == 0 {
		c.GlobalQueueBudget = 1024
	} else if c.GlobalQueueBudget < 0 {
		c.GlobalQueueBudget = 0 // unlimited
	}
	if c.DecayHalfLife == 0 {
		c.DecayHalfLife = 2 * time.Second
	} else if c.DecayHalfLife < 0 {
		c.DecayHalfLife = 0 // disabled
	}
	return c
}

// trainedModels bundles the immutable artifacts one training pass
// produces: the Kneser–Ney Markov chain behind the AB recommender and the
// fitted SVM phase classifier. Both are read-only after training, so one
// bundle is safely shared by every session engine of a deployment.
type trainedModels struct {
	ab  *recommend.AB
	cls *phase.Classifier
}

// trainHook, when non-nil, is invoked with "markov" / "classifier" each
// time the corresponding artifact is actually trained. It is a test seam:
// the server tests use it to prove that session creation performs zero
// training (see TestServerTrainsModelsOnce).
var trainHook func(artifact string)

// trainModels runs the deployment's one training pass over the study
// traces (Markov chain + phase classifier).
func (d *Dataset) trainModels(train []*trace.Trace, cfg MiddlewareConfig) (*trainedModels, error) {
	if trainHook != nil {
		trainHook("markov")
	}
	ab, err := recommend.NewAB(cfg.ABOrder, train)
	if err != nil {
		return nil, err
	}
	reqs := phase.Requests(train)
	if len(reqs) > cfg.MaxClassifierRequests {
		reqs = reqs[:cfg.MaxClassifierRequests]
	}
	if trainHook != nil {
		trainHook("classifier")
	}
	cls, err := phase.Train(reqs, phase.TrainConfig{})
	if err != nil {
		return nil, fmt.Errorf("forecache: train phase classifier: %w", err)
	}
	return &trainedModels{ab: ab, cls: cls}, nil
}

// NewMiddleware builds the paper's full two-level middleware for one
// session: phase classifier and Markov chain trained on the given traces,
// SIFT-based SB model over the dataset's signatures, hybrid allocation
// policy, cache manager and DBMS adapter. The engine prefetches
// synchronously (the deterministic mode the eval harness replays); the
// asynchronous shared pipeline is a NewServer concern.
func (d *Dataset) NewMiddleware(train []*trace.Trace, cfg MiddlewareConfig) (*core.Engine, error) {
	cfg = cfg.withDefaults()
	db := backend.NewDBMS(d.Pyramid, cfg.Latency, cfg.Clock)
	tm, err := d.trainModels(train, cfg)
	if err != nil {
		return nil, err
	}
	return d.assembleEngine(db, tm, cfg)
}

// newSB builds the per-session Signature-Based recommender (its ROI
// tracker is mutable, so unlike the AB model it cannot be shared).
func (d *Dataset) newSB(cfg MiddlewareConfig) *recommend.SB {
	return recommend.NewSB(d.Pyramid, recommend.WithSignatures(cfg.SBSignatures...))
}

// enginePolicy is the SINGLE construction site for the static per-session
// allocation policy (the paper's §5.4.3 hybrid table) over the
// deployment's model names. Session assembly and the AdaptivePolicy prior
// both use it, so the learned split's prior and model list can never
// diverge from the table the engines fall back to.
func (d *Dataset) enginePolicy(tm *trainedModels, cfg MiddlewareConfig) core.HybridPolicy {
	return core.NewHybridPolicy(tm.ab.Name(), d.newSB(cfg).Name())
}

// assembleEngine builds one two-level engine over an existing store and an
// already-trained model bundle, so several sessions can share a DBMS
// adapter, pool, scheduler, classifier and Markov chain. Only the cheap
// per-session state is fresh: the SB recommender (its ROI tracker is
// mutable), the cache manager and the history window.
func (d *Dataset) assembleEngine(store backend.Store, tm *trainedModels, cfg MiddlewareConfig, opts ...core.Option) (*core.Engine, error) {
	sb := d.newSB(cfg)
	return core.NewEngine(store, tm.cls, d.enginePolicy(tm, cfg),
		[]recommend.Model{tm.ab, sb}, core.Config{K: cfg.K, D: cfg.D, HistoryLen: cfg.HistoryLen}, opts...)
}

// NewServer wraps the dataset in an HTTP middleware server; each session
// gets its own engine, but all sessions share one DBMS adapter — optionally
// behind a cross-session tile pool (SharedTiles) and an asynchronous
// prefetch scheduler (AsyncPrefetch), the Figure 5 deployment grown to
// multi-user scale. Call Close on the returned server to stop the
// scheduler's workers.
//
// The phase classifier and the AB recommender's Markov chain are trained
// exactly once, here, and the immutable trained artifacts are shared by
// every session engine: creating the 2nd..Nth session performs no training
// and is O(1). (Earlier versions retrained both models per session.) A
// training failure is reported by the first session request. The scheduler
// is sized by PrefetchWorkers / PrefetchQueue / GlobalQueueBudget /
// DecayHalfLife; AdaptiveK closes the backpressure loop from its Pressure
// signal back into each engine's prefetch budget (per-session with
// FairShare), UtilityLearning closes the prediction-quality loop from
// cache outcomes back into admission control, AdaptiveAllocation closes
// the budget-allocation loop from the same outcomes back into the
// per-phase model split, and MetricsEndpoint exposes all of it as
// Prometheus text under GET /metrics.
func (d *Dataset) NewServer(train []*trace.Trace, cfg MiddlewareConfig) *server.Server {
	cfg = cfg.withDefaults()
	meta := server.Meta{
		Levels:   d.Pyramid.NumLevels(),
		TileSize: d.Pyramid.TileSize(),
		Attrs:    d.Pyramid.Attrs(),
	}
	db := backend.NewDBMS(d.Pyramid, cfg.Latency, cfg.Clock)
	var store backend.Store = db
	if cfg.SharedTiles > 0 {
		store = backend.NewSharedPool(db, cfg.SharedTiles)
	}
	// The feedback collector exists whenever some loop consumes outcomes:
	// UtilityLearning prices scheduler admission with it (async only),
	// AdaptiveAllocation re-splits the budget with it (either mode).
	var sched *prefetch.Scheduler
	var fc *prefetch.FeedbackCollector
	var opts []server.Option
	if (cfg.UtilityLearning && cfg.AsyncPrefetch) || cfg.AdaptiveAllocation {
		fc = prefetch.NewFeedbackCollector(cfg.K)
	}
	if cfg.AsyncPrefetch {
		var util *prefetch.FeedbackCollector
		if cfg.UtilityLearning {
			util = fc
		}
		sched = prefetch.NewScheduler(store, prefetch.Config{
			Workers:         cfg.PrefetchWorkers,
			QueuePerSession: cfg.PrefetchQueue,
			GlobalQueue:     cfg.GlobalQueueBudget,
			DecayHalfLife:   cfg.DecayHalfLife,
			Utility:         util,
		})
		opts = append(opts, server.WithScheduler(sched))
	}
	if cfg.MetricsEndpoint {
		opts = append(opts, server.WithMetrics())
	}
	if cfg.MaxSessions > 0 {
		opts = append(opts, server.WithSessionLimit(cfg.MaxSessions))
	}
	if cfg.SessionTTL > 0 {
		opts = append(opts, server.WithSessionTTL(cfg.SessionTTL))
	}
	tm, trainErr := d.trainModels(train, cfg)
	// One AdaptivePolicy is shared by every session engine, so the learned
	// per-phase split reflects the whole deployment's traffic and the
	// server can export it once (/stats, /metrics).
	var adaptive *core.AdaptivePolicy
	if cfg.AdaptiveAllocation && trainErr == nil {
		base := d.enginePolicy(tm, cfg)
		p, err := core.NewAdaptivePolicy(base,
			[]string{base.ABName, base.SBName}, fc, core.AdaptiveConfig{})
		if err != nil {
			// Surface like a training failure — on the first session request
			// — instead of silently serving with adaptation disabled.
			trainErr = fmt.Errorf("forecache: adaptive allocation: %w", err)
		} else {
			adaptive = p
			opts = append(opts, server.WithAllocation(adaptive))
		}
	}
	factory := func(session string) (*core.Engine, error) {
		if trainErr != nil {
			return nil, trainErr
		}
		var engOpts []core.Option
		if sched != nil {
			engOpts = append(engOpts, core.WithScheduler(sched, session))
			if cfg.AdaptiveK {
				engOpts = append(engOpts, core.WithAdaptiveK())
				if cfg.FairShare {
					engOpts = append(engOpts, core.WithFairShare())
				}
			}
		}
		if fc != nil {
			engOpts = append(engOpts, core.WithFeedback(fc))
		}
		if adaptive != nil {
			engOpts = append(engOpts, core.WithAdaptiveAllocation(adaptive))
		}
		return d.assembleEngine(store, tm, cfg, engOpts...)
	}
	return server.New(meta, factory, opts...)
}
