package forecache

import (
	"fmt"

	"forecache/internal/array"
	"forecache/internal/backend"
	"forecache/internal/core"
	"forecache/internal/eval"
	"forecache/internal/modis"
	"forecache/internal/phase"
	"forecache/internal/recommend"
	"forecache/internal/server"
	"forecache/internal/sig"
	"forecache/internal/study"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// Re-exported core types so downstream code can use the facade alone.
type (
	// Coord addresses one data tile (zoom level, row, column).
	Coord = tile.Coord
	// Tile is one data tile with its signature metadata.
	Tile = tile.Tile
	// Pyramid is the materialized set of zoom levels and tiles.
	Pyramid = tile.Pyramid
	// Trace is one recorded user session.
	Trace = trace.Trace
	// Request is one tile request within a trace.
	Request = trace.Request
	// Move is one interface action (pan / zoom in / zoom out).
	Move = trace.Move
	// Phase is the user's analysis phase.
	Phase = trace.Phase
	// Engine is a per-session middleware instance (prediction engine +
	// cache manager + DBMS adapter).
	Engine = core.Engine
	// Response reports one served tile request.
	Response = core.Response
	// LatencyModel holds the hit/miss service times.
	LatencyModel = backend.LatencyModel
	// Harness runs the paper's experiments.
	Harness = eval.Harness
	// Server is the HTTP middleware front door.
	Server = server.Server
)

// Dataset bundles a built world: the array database, the NDSI array, the
// tile pyramid with signatures, and the signature computer.
type Dataset struct {
	DB         *array.Database
	NDSI       *array.Array
	Pyramid    *tile.Pyramid
	Signatures *sig.Computer
	Attr       string
}

// WorldConfig sizes the synthetic MODIS world.
type WorldConfig struct {
	// Seed makes the world reproducible.
	Seed int64
	// Size is the raw grid resolution (cells per side). Default 512.
	Size int
	// TileSize is the per-side cell count of every tile. Default 16.
	TileSize int
	// CodebookTiles is how many tiles train the SIFT visual-word codebook.
	// Default 80.
	CodebookTiles int
}

func (c WorldConfig) withDefaults() WorldConfig {
	if c.Size <= 0 {
		c.Size = 512
	}
	if c.TileSize <= 0 {
		c.TileSize = 16
	}
	if c.CodebookTiles <= 0 {
		c.CodebookTiles = 80
	}
	return c
}

// BuildWorld runs the full dataset pipeline of paper §2.3 and §5.1:
// synthesize the MODIS bands, compute NDSI through the array engine
// (Query 1), build the zoom-level pyramid, train the signature codebook on
// the pyramid's own tiles, and attach all four signatures to every tile.
func BuildWorld(cfg WorldConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	db := array.NewDatabase()
	ndsi, err := modis.BuildWorld(db, cfg.Seed, cfg.Size)
	if err != nil {
		return nil, fmt.Errorf("forecache: build world: %w", err)
	}
	return buildDataset(db, ndsi, "ndsi_avg", cfg.TileSize, cfg.CodebookTiles, cfg.Seed)
}

// BuildPyramid wraps any 2-D array into a signed tile pyramid: the route
// for non-MODIS datasets (e.g. the time-series example). attr selects the
// attribute signatures describe; sigCfg.Attr is overridden to match.
func BuildPyramid(a *array.Array, tileSize int, sigCfg sig.Config, codebookTiles int) (*Dataset, error) {
	db := array.NewDatabase()
	db.Store(a.Schema().Name, a)
	if codebookTiles <= 0 {
		codebookTiles = 80
	}
	return buildDatasetWith(db, a, sigCfg, tileSize, codebookTiles)
}

func buildDataset(db *array.Database, a *array.Array, attr string, tileSize, codebookTiles int, seed int64) (*Dataset, error) {
	sigCfg := sig.DefaultConfig(attr)
	sigCfg.Seed = seed
	return buildDatasetWith(db, a, sigCfg, tileSize, codebookTiles)
}

func buildDatasetWith(db *array.Database, a *array.Array, sigCfg sig.Config, tileSize, codebookTiles int) (*Dataset, error) {
	pyr, err := tile.Build(a, tile.Params{TileSize: tileSize, Agg: array.AggAvg})
	if err != nil {
		return nil, fmt.Errorf("forecache: build pyramid: %w", err)
	}
	comp := sig.NewComputer(sigCfg)
	comp.TrainCodebook(pyr.SampleTiles(codebookTiles))
	pyr.ComputeMetadata(comp.Compute)
	return &Dataset{DB: db, NDSI: a, Pyramid: pyr, Signatures: comp, Attr: sigCfg.Attr}, nil
}

// SimulateStudy reproduces the paper's 18-user, 3-task study over this
// dataset, returning 54 ground-truth-labeled traces (§5.3).
func (d *Dataset) SimulateStudy(seed int64) []*trace.Trace {
	return study.NewSimulator(d.Pyramid, d.Attr).RunStudy(seed)
}

// Harness returns an experiment harness over the dataset and traces.
func (d *Dataset) Harness(traces []*trace.Trace) *eval.Harness {
	return &eval.Harness{Pyr: d.Pyramid, Attr: d.Attr, Traces: traces}
}

// MiddlewareConfig assembles a production middleware engine.
type MiddlewareConfig struct {
	// K is the prefetch budget in tiles. Default 5 (the paper's headline k).
	K int
	// D is the prediction distance in moves. Default 1.
	D int
	// HistoryLen is the session history window. Default 3.
	HistoryLen int
	// ABOrder is the Markov chain order. Default 3 (the paper's best).
	ABOrder int
	// SBSignatures restricts the signature model. Default SIFT only.
	SBSignatures []string
	// Latency overrides the hit/miss service times. Default: the paper's
	// measured 19.5 ms / 984 ms.
	Latency LatencyModel
	// Clock accounts simulated latency; nil disables accounting.
	Clock backend.Clock
	// MaxClassifierRequests caps SVM training size. Default 800.
	MaxClassifierRequests int
}

func (c MiddlewareConfig) withDefaults() MiddlewareConfig {
	if c.K <= 0 {
		c.K = 5
	}
	if c.D <= 0 {
		c.D = 1
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 3
	}
	if c.ABOrder <= 0 {
		c.ABOrder = 3
	}
	if len(c.SBSignatures) == 0 {
		c.SBSignatures = []string{sig.NameSIFT}
	}
	if c.Latency == (LatencyModel{}) {
		c.Latency = backend.DefaultLatency()
	}
	if c.MaxClassifierRequests <= 0 {
		c.MaxClassifierRequests = 800
	}
	return c
}

// NewMiddleware builds the paper's full two-level middleware for one
// session: phase classifier and Markov chain trained on the given traces,
// SIFT-based SB model over the dataset's signatures, hybrid allocation
// policy, cache manager and DBMS adapter.
func (d *Dataset) NewMiddleware(train []*trace.Trace, cfg MiddlewareConfig) (*core.Engine, error) {
	cfg = cfg.withDefaults()
	ab, err := recommend.NewAB(cfg.ABOrder, train)
	if err != nil {
		return nil, err
	}
	sb := recommend.NewSB(d.Pyramid, recommend.WithSignatures(cfg.SBSignatures...))
	reqs := phase.Requests(train)
	if len(reqs) > cfg.MaxClassifierRequests {
		reqs = reqs[:cfg.MaxClassifierRequests]
	}
	cls, err := phase.Train(reqs, phase.TrainConfig{})
	if err != nil {
		return nil, fmt.Errorf("forecache: train phase classifier: %w", err)
	}
	db := backend.NewDBMS(d.Pyramid, cfg.Latency, cfg.Clock)
	return core.NewEngine(db, cls, core.NewHybridPolicy(ab.Name(), sb.Name()),
		[]recommend.Model{ab, sb}, core.Config{K: cfg.K, D: cfg.D, HistoryLen: cfg.HistoryLen})
}

// NewServer wraps the dataset in an HTTP middleware server; each session
// gets its own freshly assembled engine.
func (d *Dataset) NewServer(train []*trace.Trace, cfg MiddlewareConfig) *server.Server {
	meta := server.Meta{
		Levels:   d.Pyramid.NumLevels(),
		TileSize: d.Pyramid.TileSize(),
		Attrs:    d.Pyramid.Attrs(),
	}
	return server.New(meta, func() (*core.Engine, error) {
		return d.NewMiddleware(train, cfg)
	})
}
