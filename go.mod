module forecache

go 1.24
