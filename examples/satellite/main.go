// Satellite: the paper's full MODIS snow-cover scenario end to end —
// synthesize the world, simulate the 18-user study, evaluate the two-level
// prediction engine against the Momentum baseline, and print the latency
// translation (§5.5), plus an ASCII overview map and a Figure 9-style
// zoom sawtooth.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"forecache"
	"forecache/internal/backend"
	"forecache/internal/eval"
	"forecache/internal/trace"
)

func main() {
	ds, err := forecache.BuildWorld(forecache.WorldConfig{Seed: 42, Size: 512, TileSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("NDSI world overview (level 2; '#' snow, '+' some snow, '.' land, '~' ocean):")
	printOverview(ds)

	traces := ds.SimulateStudy(42)
	fmt.Printf("\nsimulated study: %d traces\n", len(traces))

	// A zoom-level sawtooth like Figure 9.
	fmt.Println("\none user's zoom-level profile (Figure 9 shape):")
	eval.RenderFig9(os.Stdout, pickSawtooth(traces), ds.Pyramid.NumLevels())

	// Accuracy: the full engine vs the Momentum baseline at the paper's
	// headline fetch size k=5, leave-one-user-out.
	h := ds.Harness(traces)
	ks := []int{5}
	hybrid, err := h.EvalHybridLOO(eval.HybridSpec{}, ks)
	if err != nil {
		log.Fatal(err)
	}
	momentum, err := h.EvalModelLOO("momentum", eval.MomentumFactory(), ks)
	if err != nil {
		log.Fatal(err)
	}
	lm := backend.DefaultLatency()
	hAcc := hybrid.Get("hybrid", 5, trace.PhaseUnknown).Accuracy()
	mAcc := momentum.Get("momentum", 5, trace.PhaseUnknown).Accuracy()
	fmt.Printf("\nprediction accuracy at k=5 (LOO-CV): hybrid %.1f%%, momentum %.1f%%\n",
		hAcc*100, mAcc*100)
	fmt.Printf("implied avg response time:            hybrid %v, momentum %v, no prefetch %v\n",
		eval.Latency(hAcc, lm).Round(1e6), eval.Latency(mAcc, lm).Round(1e6), lm.Miss)
}

func printOverview(ds *forecache.Dataset) {
	const level = 2
	side := ds.Pyramid.Side(level)
	size := ds.Pyramid.TileSize()
	for ty := 0; ty < side; ty++ {
		for row := 0; row < size; row += 2 { // halve rows for terminal aspect
			var b strings.Builder
			for tx := 0; tx < side; tx++ {
				t, err := ds.Pyramid.Tile(forecache.Coord{Level: level, Y: ty, X: tx})
				if err != nil {
					continue
				}
				g, _ := t.Grid(ds.Attr)
				for col := 0; col < size; col++ {
					v := g[row*size+col]
					switch {
					case math.IsNaN(v):
						b.WriteByte(' ')
					case v > 0.4:
						b.WriteByte('#')
					case v > 0:
						b.WriteByte('+')
					case v > -0.2:
						b.WriteByte('.')
					default:
						b.WriteByte('~')
					}
				}
			}
			fmt.Println(b.String())
		}
	}
}

func pickSawtooth(traces []*trace.Trace) *trace.Trace {
	best := traces[0]
	bestChanges := -1
	for _, tr := range traces {
		changes, dir := 0, 0
		for i := 1; i < len(tr.Requests); i++ {
			d := tr.Requests[i].Coord.Level - tr.Requests[i-1].Coord.Level
			if d != 0 && ((d > 0) != (dir > 0) || dir == 0) {
				changes++
				dir = d
			}
		}
		if changes > bestChanges {
			best, bestChanges = tr, changes
		}
	}
	return best
}
