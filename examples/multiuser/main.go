// Multiuser: several analysts browsing the same dataset through one
// middleware server over HTTP, each with an isolated session, history,
// prediction engine and cache — the deployment shape of Figure 5, grown to
// multi-user scale: every session's predictions flow through one shared
// asynchronous prefetch scheduler (ranked queues, per-session fairness,
// cross-session coalescing, utility decay with a global queue budget and
// backpressure-driven adaptive K) over one shared tile pool, so N analysts
// browsing the same region cost the DBMS far fewer than N fetches. The
// phase classifier and Markov chain are trained once at server build and
// shared by every session, so joining analysts pay no training cost.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"forecache"
	"forecache/internal/client"
	"forecache/internal/tile"
)

func main() {
	ds, err := forecache.BuildWorld(forecache.WorldConfig{Seed: 7, Size: 256, TileSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	traces := ds.SimulateStudy(7)
	const globalQueueBudget = 128 // queued prefetch entries across ALL sessions
	srv, err := ds.NewServer(traces, forecache.MiddlewareConfig{
		K:                  5,
		AsyncPrefetch:      true, // submit-and-return prefetching
		Push:               true, // stream completed prefetches to attached sessions (GET /stream)
		Shards:             2,    // independent serving-tier shards (consistent-hash on session id)
		PrefetchWorkers:    4,    // concurrent DBMS fetch budget, divided across shards
		GlobalQueueBudget:  globalQueueBudget,
		DecayHalfLife:      2 * time.Second,  // stale queued predictions lose utility
		AdaptiveK:          true,             // engines shrink K under backpressure
		FairShare:          true,             // ...the flooding session's K first
		UtilityLearning:    true,             // fit the position curve from consumption
		AdaptiveAllocation: true,             // budget share follows consumption per phase
		Hotspot:            true,             // third model: shared cross-session popularity
		MetricsEndpoint:    true,             // Prometheus text under GET /metrics
		SharedTiles:        256,              // cross-session tile pool
		MaxSessions:        64,               // LRU session cap
		SessionTTL:         30 * time.Minute, // idle sessions are evicted
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// An in-process HTTP server keeps the example self-contained; swap in
	// http.ListenAndServe(addr, srv) for a real deployment.
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Println("middleware listening at", ts.URL)

	// Three analysts explore different parts of the world concurrently.
	sessions := []struct {
		name string
		quad tile.Quadrant
	}{
		{"alice", tile.NW}, {"bob", tile.SE}, {"carol", tile.SW},
	}
	var wg sync.WaitGroup
	results := make([]string, len(sessions))
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, name string, quad tile.Quadrant) {
			defer wg.Done()
			c := client.New(ts.URL, name)
			// Attach the push stream: completed prefetches for this session
			// arrive in the client's slot buffer before they're requested.
			if err := c.Attach(); err != nil {
				log.Fatal(err)
			}
			defer c.Detach()
			meta, err := c.Meta()
			if err != nil {
				log.Fatal(err)
			}
			cur := forecache.Coord{}
			hits, total, streamed := 0, 0, 0
			req := func(next forecache.Coord) {
				_, info, err := c.Tile(next)
				if err != nil {
					log.Fatalf("%s: %v", name, err)
				}
				total++
				if info.Hit {
					hits++
				}
				if info.Streamed {
					streamed++
				}
				cur = next
			}
			req(cur)
			for cur.Level < meta.Levels-1 {
				req(cur.Child(quad))
			}
			// Pan around at the detail level, staying inside the grid.
			side := 1 << cur.Level
			for _, d := range [][2]int{{0, 1}, {1, 0}, {0, -1}, {-1, 0}} {
				next := cur.Pan(d[0], d[1])
				if next.Y >= 0 && next.X >= 0 && next.Y < side && next.X < side {
					req(next)
				}
			}
			results[i] = fmt.Sprintf("%-6s browsed %2d tiles, %2d served from cache, %2d already streamed client-side", name, total, hits, streamed)
		}(i, s.name, s.quad)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(r)
	}
	// With Shards > 1 each analyst's session lives on its consistent-hash
	// home shard (own lock, own sweep, own scheduler queue); telemetry
	// still aggregates deployment-wide.
	fmt.Printf("server tracked %d isolated sessions across %d shards\n", srv.Sessions(), srv.NumShards())

	// The shared scheduler worked off the response path the whole time:
	// wait for the queue to drain, then read the pipeline telemetry (the
	// same numbers /stats serves under "scheduler").
	srv.Scheduler().Drain()
	st := srv.Scheduler().Stats()
	fmt.Printf("prefetch pipeline: %d queued, %d coalesced, %d cancelled, %d completed, %d shed\n",
		st.Queued, st.Coalesced, st.Cancelled, st.Completed, st.Shed)
	fmt.Printf("mean queue latency %s across %d sessions; pressure now %.2f (peak queue %d/%d)\n",
		st.AvgQueueLatency.Round(time.Microsecond), st.Sessions, st.Pressure, st.PeakPending, globalQueueBudget)

	// Push delivery telemetry: the same numbers ride /stats ("push") and
	// /metrics (forecache_push_*).
	ps := srv.Push().Stats()
	fmt.Printf("push streams: %d opened, %d tiles pushed, %d consumed from slot buffers, %d dropped\n",
		ps.Opened, ps.Pushed, ps.Consumed, ps.Dropped)

	// The closed loop at work: the scheduler's position-utility curve was
	// fit online from what the analysts actually consumed, and the same
	// numbers (plus per-session backpressure and cache hit rates) are
	// scrapeable as Prometheus text from /metrics.
	fmt.Printf("utility curve (fit from %d cache outcomes):", st.UtilityObservations)
	for pos, f := range st.UtilityCurve {
		fmt.Printf(" p%d=%.2f", pos, f)
	}
	fmt.Println()

	// The same outcomes also drive the adaptive allocation policy — here a
	// genuinely 3-way split: the registry's prior table (the paper's
	// §5.4.3 extended with the hotspot column) is the prior, and each
	// phase's split drifts across the Markov, signature and cross-session
	// hotspot models toward whichever one's prefetches the analysts
	// actually consumed (scrapeable as
	// forecache_allocation_share{phase,model}).
	if resp, err := ts.Client().Get(ts.URL + "/stats"); err == nil {
		var stats struct {
			Allocation map[string]map[string]float64 `json:"allocation"`
		}
		if json.NewDecoder(resp.Body).Decode(&stats) == nil && len(stats.Allocation) > 0 {
			phases := make([]string, 0, len(stats.Allocation))
			for ph := range stats.Allocation {
				phases = append(phases, ph)
			}
			sort.Strings(phases)
			fmt.Println("allocation shares (prior = the paper's static table):")
			for _, ph := range phases {
				models := make([]string, 0, len(stats.Allocation[ph]))
				for m := range stats.Allocation[ph] {
					models = append(models, m)
				}
				sort.Strings(models)
				fmt.Printf("  %-12s", ph)
				for _, m := range models {
					fmt.Printf(" %s=%.2f", m, stats.Allocation[ph][m])
				}
				fmt.Println()
			}
		}
		resp.Body.Close()
	}
	if resp, err := ts.Client().Get(ts.URL + "/metrics"); err == nil {
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		shown := 0
		for sc.Scan() && shown < 3 {
			line := sc.Text()
			if strings.HasPrefix(line, "forecache_cache_hit") {
				fmt.Println("metrics sample:", line)
				shown++
			}
		}
	}
}
