// Multiuser: several analysts browsing the same dataset through one
// middleware server over HTTP, each with an isolated session, history,
// prediction engine and cache — the deployment shape of Figure 5.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"sync"

	"forecache"
	"forecache/internal/client"
	"forecache/internal/tile"
)

func main() {
	ds, err := forecache.BuildWorld(forecache.WorldConfig{Seed: 7, Size: 256, TileSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	traces := ds.SimulateStudy(7)
	srv := ds.NewServer(traces, forecache.MiddlewareConfig{K: 5})

	// An in-process HTTP server keeps the example self-contained; swap in
	// http.ListenAndServe(addr, srv) for a real deployment.
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Println("middleware listening at", ts.URL)

	// Three analysts explore different parts of the world concurrently.
	sessions := []struct {
		name string
		quad tile.Quadrant
	}{
		{"alice", tile.NW}, {"bob", tile.SE}, {"carol", tile.SW},
	}
	var wg sync.WaitGroup
	results := make([]string, len(sessions))
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, name string, quad tile.Quadrant) {
			defer wg.Done()
			c := client.New(ts.URL, name)
			meta, err := c.Meta()
			if err != nil {
				log.Fatal(err)
			}
			cur := forecache.Coord{}
			hits, total := 0, 0
			req := func(next forecache.Coord) {
				_, info, err := c.Tile(next)
				if err != nil {
					log.Fatalf("%s: %v", name, err)
				}
				total++
				if info.Hit {
					hits++
				}
				cur = next
			}
			req(cur)
			for cur.Level < meta.Levels-1 {
				req(cur.Child(quad))
			}
			// Pan around at the detail level, staying inside the grid.
			side := 1 << cur.Level
			for _, d := range [][2]int{{0, 1}, {1, 0}, {0, -1}, {-1, 0}} {
				next := cur.Pan(d[0], d[1])
				if next.Y >= 0 && next.X >= 0 && next.Y < side && next.X < side {
					req(next)
				}
			}
			results[i] = fmt.Sprintf("%-6s browsed %2d tiles, %2d served from cache", name, total, hits)
		}(i, s.name, s.quad)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(r)
	}
	fmt.Printf("server tracked %d isolated sessions\n", srv.Sessions())
}
