// Quickstart: build a small synthetic satellite world, stand up the
// ForeCache middleware, browse a few tiles, and watch the prefetcher turn
// would-be DBMS round trips into cache hits.
package main

import (
	"fmt"
	"log"

	"forecache"
	"forecache/internal/tile"
)

func main() {
	// 1. Build the world: raw reflectance bands -> NDSI (Query 1) -> zoom
	//    levels -> tiles -> signatures. Deterministic for a fixed seed.
	ds, err := forecache.BuildWorld(forecache.WorldConfig{Seed: 1, Size: 256, TileSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d zoom levels, %d tiles\n", ds.Pyramid.NumLevels(), ds.Pyramid.NumTiles())

	// 2. Train the middleware on simulated study traces (in production
	//    these would be recorded user sessions).
	traces := ds.SimulateStudy(2)
	mw, err := ds.NewMiddleware(traces, forecache.MiddlewareConfig{K: 5})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Browse: start at the overview and zoom toward the north-west,
	//    then pan around — the canonical forage -> navigate -> sensemake
	//    pattern.
	path := []forecache.Coord{
		{Level: 0, Y: 0, X: 0},
	}
	cur := path[0]
	for _, q := range []tile.Quadrant{tile.NW, tile.SW, tile.NE} {
		cur = cur.Child(q)
		path = append(path, cur)
	}
	path = append(path, cur.Pan(0, 1), cur.Pan(0, 2), cur.Pan(1, 2))

	for i, c := range path {
		resp, err := mw.Request(c)
		if err != nil {
			log.Fatal(err)
		}
		status := "MISS -> DBMS query"
		if resp.Hit {
			status = "HIT  -> served from cache"
		}
		fmt.Printf("request %d: %-8v %s (%v, phase %s)\n",
			i+1, c, status, resp.Latency, resp.Phase)
	}

	st := mw.CacheStats()
	fmt.Printf("\nsession: %d hits / %d requests (%.0f%% hit rate)\n",
		st.Hits, st.Hits+st.Misses, st.HitRate()*100)
	fmt.Println("a hit answers in ~19.5ms; a miss costs a ~984ms DBMS round trip (paper §5.5)")
}
