// Timeseries: the paper's heart-rate monitoring scenario (Figure 2c).
// A patient's beats-per-minute stream is laid out as a 2-D array (day x
// minute-of-day), tiled into a zoom pyramid through the generic pipeline,
// and browsed through the middleware: zoom out for weekly rhythm, zoom in
// to individual episodes, pan along the time axis with prefetching.
package main

import (
	"fmt"
	"log"
	"math"

	"forecache"
	"forecache/internal/array"
	"forecache/internal/sig"
	"forecache/internal/trace"
)

const (
	days    = 128
	minutes = 512 // 512 sampled minutes per day for a power-of-two grid
)

func main() {
	hr := buildHeartRateArray()
	cfg := sig.DefaultConfig("bpm")
	cfg.ValueMin, cfg.ValueMax = 30, 190
	ds, err := forecache.BuildPyramid(hr, 16, cfg, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heart-rate pyramid: %d levels, %d tiles over %d days\n",
		ds.Pyramid.NumLevels(), ds.Pyramid.NumTiles(), days)

	// Train the middleware on synthetic browsing sessions: clinicians
	// repeatedly zoom into episodes and pan along the time axis.
	traces := clinicianTraces(ds)
	mw, err := ds.NewMiddleware(traces, forecache.MiddlewareConfig{K: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Browse: overview -> zoom toward the tachycardia episode -> pan right
	// along time (the exact pattern the AB model should learn). The 128
	// recorded days occupy the top band of the padded square pyramid, so
	// descents stay in the northern quadrants.
	cur := forecache.Coord{}
	walk := []trace.Move{
		trace.ZoomInNE, trace.ZoomInNW, trace.ZoomInNE,
		trace.PanRight, trace.PanRight, trace.PanRight, trace.PanRight,
	}
	if _, err := mw.Request(cur); err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, mv := range walk {
		next := trace.Apply(cur, mv)
		if !ds.Pyramid.Contains(next) {
			continue
		}
		cur = next
		resp, err := mw.Request(cur)
		if err != nil {
			log.Fatal(err)
		}
		mark := "miss"
		if resp.Hit {
			mark = "HIT"
			hits++
		}
		mean, _, _, maxv, _, _ := resp.Tile.Stats("bpm")
		fmt.Printf("%-9s -> %-8v %-4s mean %5.1f bpm, peak %5.1f bpm (%v)\n",
			mv, cur, mark, mean, maxv, resp.Latency)
	}
	st := mw.CacheStats()
	fmt.Printf("\npan-along-time browsing: %.0f%% of requests served from the prefetch cache\n",
		st.HitRate()*100)
}

// buildHeartRateArray synthesizes days x minutes of bpm with circadian
// rhythm, daily exercise bouts, and a multi-day tachycardia episode.
func buildHeartRateArray() *array.Array {
	a := array.NewZero(array.Schema{
		Name:  "HEARTRATE",
		Attrs: []string{"bpm"},
		Dims: [2]array.Dim{
			{Name: "day", Size: days},
			{Name: "minute", Size: minutes},
		},
	})
	data, _ := a.AttrData("bpm")
	for d := 0; d < days; d++ {
		for m := 0; m < minutes; m++ {
			tod := float64(m) / minutes // 0..1 through the day
			// Circadian baseline: ~52 bpm at night, ~72 midday.
			base := 62 - 10*math.Cos(2*math.Pi*tod)
			// Evening exercise bout on most days.
			if tod > 0.72 && tod < 0.78 && d%7 != 6 {
				base += 65 * math.Sin((tod-0.72)/0.06*math.Pi)
			}
			// A tachycardia episode around days 88-96, late in the day:
			// this is the anomaly a clinician drills into.
			if d >= 88 && d <= 96 && tod > 0.55 && tod < 0.7 {
				base += 45
			}
			// Measurement jitter, deterministic per cell.
			j := float64((d*7919+m*104729)%97)/97 - 0.5
			data[d*minutes+m] = base + 4*j
		}
	}
	return a
}

// clinicianTraces synthesizes training sessions: dive into a day region,
// pan along time, climb back out.
func clinicianTraces(ds *forecache.Dataset) []*trace.Trace {
	var out []*trace.Trace
	quads := []trace.Move{trace.ZoomInNW, trace.ZoomInNE} // data sits in the top band
	for u := 0; u < 8; u++ {
		tr := &trace.Trace{User: u, Task: 1}
		cur := forecache.Coord{}
		push := func(mv trace.Move) {
			if mv != trace.None {
				cur = trace.Apply(cur, mv)
			}
			tr.Requests = append(tr.Requests, trace.Request{Coord: cur, Move: mv, Phase: trace.Navigation})
		}
		push(trace.None)
		for i := 0; i < ds.Pyramid.NumLevels()-1; i++ {
			push(quads[(u+i)%len(quads)])
		}
		for i := 0; i < 4; i++ {
			if ds.Pyramid.Contains(trace.Apply(cur, trace.PanRight)) {
				push(trace.PanRight)
			}
		}
		push(trace.ZoomOut)
		push(trace.ZoomOut)
		out = append(out, tr)
	}
	// Give the traces phase labels so the classifier can train.
	for _, tr := range out {
		for i := range tr.Requests {
			levels := ds.Pyramid.NumLevels()
			switch {
			case tr.Requests[i].Coord.Level <= levels/3:
				tr.Requests[i].Phase = trace.Foraging
			case tr.Requests[i].Move.IsPan():
				tr.Requests[i].Phase = trace.Sensemaking
			default:
				tr.Requests[i].Phase = trace.Navigation
			}
		}
	}
	return out
}
