package forecache

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"forecache/internal/client"
)

// TestPushDeliveryAcceptance is the issue's acceptance test for the push
// tentpole. Three replays of the same pan-heavy study trace:
//
//	pull      Push off — the baseline middleware
//	detached  Push on, but the session never attaches a stream
//	streamed  Push on with a live client stream and slot buffer
//
// The streamed replay must make a strictly positive fraction of its tiles
// available client-side BEFORE they are requested (push lead time >= 0),
// which pull mode can never do. Meanwhile the server-observed hit/miss
// sequence must be bit-identical across all three replays: push is a
// delivery channel, not a behavior change, so the pull path — and with it
// the suite's pinned replay hit rates — cannot move.
func TestPushDeliveryAcceptance(t *testing.T) {
	ds, traces := testWorld(t)
	// Task-3 traces (user-major order: user u's task 3 is trace 3u+2) are
	// the paper's pan-heavy workload, where prefetching actually leads the
	// viewer — the case push delivery exists for.
	replay := []*Trace{traces[2], traces[5]}

	mkServer := func(pushOn bool) (*Server, *httptest.Server) {
		srv, err := ds.NewServer(traces, MiddlewareConfig{
			K: 5, AsyncPrefetch: true, PrefetchWorkers: 4, Push: pushOn,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		t.Cleanup(srv.Close)
		return srv, ts
	}

	// run replays the traces in fresh sessions and returns the hit/miss
	// sequence plus how many requests were answered from the client's
	// push-stream slot buffer.
	run := func(srv *Server, ts *httptest.Server, prefix string, attach bool) (hits []bool, streamed, total int) {
		sched := srv.Scheduler()
		for i, tr := range replay {
			c := client.New(ts.URL, fmt.Sprintf("%s-%d", prefix, i))
			var base int
			if attach {
				if err := c.Attach(); err != nil {
					t.Fatal(err)
				}
				// Registry counters are cumulative across the run's sessions;
				// frames enqueued before this attach belong to earlier ones.
				base = enqueued(srv)
			}
			for _, req := range tr.Requests {
				if attach {
					// Drain() guarantees every completed prefetch's frame is
					// enqueued; wait until the client has received them all so
					// slot-buffer consumption is deterministic.
					waitStreamed(t, srv, c, base)
				}
				_, info, err := c.Tile(req.Coord)
				if err != nil {
					t.Fatalf("%s trace %d %v: %v", prefix, i, req.Coord, err)
				}
				hits = append(hits, info.Hit)
				total++
				if info.Streamed {
					streamed++
				}
				sched.Drain()
			}
			if attach {
				c.Detach()
			}
		}
		return hits, streamed, total
	}

	pullSrv, pullTS := mkServer(false)
	pullHits, pullStreamed, _ := run(pullSrv, pullTS, "pull", false)

	pushSrv, pushTS := mkServer(true)
	detHits, detStreamed, _ := run(pushSrv, pushTS, "detached", false)
	strHits, strStreamed, total := run(pushSrv, pushTS, "streamed", true)

	if pullStreamed != 0 || detStreamed != 0 {
		t.Fatalf("streamed tiles without a stream: pull=%d detached=%d", pullStreamed, detStreamed)
	}
	// Strictly better time-to-tile-available: a positive fraction of the
	// streamed replay's tiles were already on the client when requested.
	if strStreamed == 0 {
		t.Fatalf("streamed replay consumed 0 of %d tiles from the slot buffer", total)
	}
	t.Logf("streamed fraction: %d/%d tiles available before request", strStreamed, total)

	// Bit-identical server behavior: the hit/miss sequence must not move,
	// whether push is compiled out of the deployment, idle, or live.
	if len(pullHits) != len(detHits) || len(pullHits) != len(strHits) {
		t.Fatalf("replay lengths diverged: %d/%d/%d", len(pullHits), len(detHits), len(strHits))
	}
	for i := range pullHits {
		if pullHits[i] != detHits[i] || pullHits[i] != strHits[i] {
			t.Fatalf("request %d hit/miss diverged: pull=%v detached=%v streamed=%v",
				i, pullHits[i], detHits[i], strHits[i])
		}
	}

	// The push metrics saw the traffic.
	st := pushSrv.Push().Stats()
	if st.Pushed == 0 || st.Consumed == 0 {
		t.Fatalf("push registry stats = %+v, want pushed and consumed traffic", st)
	}
}

// enqueued counts the frames ever placed on any stream's channel: pushes
// and backfills that were not dropped for a full buffer.
func enqueued(srv *Server) int {
	rs := srv.Push().Stats()
	return rs.Pushed + rs.Backfilled - rs.Dropped
}

// waitStreamed blocks until the client has received every frame the
// server's registry has enqueued for it since base.
func waitStreamed(t *testing.T, srv *Server, c *client.Client, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.PushStats().Frames >= enqueued(srv)-base {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("client never caught up with the enqueued frames")
}
