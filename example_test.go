package forecache_test

import (
	"fmt"

	"forecache"
	"forecache/internal/markov"
	"forecache/internal/sig"
	"forecache/internal/tile"
)

// ExampleBuildWorld shows the one-call dataset pipeline: synthetic MODIS
// bands -> NDSI via the array engine -> tile pyramid -> signatures.
func ExampleBuildWorld() {
	ds, err := forecache.BuildWorld(forecache.WorldConfig{Seed: 1, Size: 128, TileSize: 16})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("levels:", ds.Pyramid.NumLevels())
	fmt.Println("tiles:", ds.Pyramid.NumTiles())
	fmt.Println("attr:", ds.Attr)
	// Output:
	// levels: 4
	// tiles: 85
	// attr: ndsi_avg
}

// ExampleDataset_NewMiddleware walks the canonical zoom-in path and shows
// the prefetcher at work.
func ExampleDataset_NewMiddleware() {
	ds, err := forecache.BuildWorld(forecache.WorldConfig{Seed: 1, Size: 128, TileSize: 16})
	if err != nil {
		fmt.Println(err)
		return
	}
	mw, err := ds.NewMiddleware(ds.SimulateStudy(1), forecache.MiddlewareConfig{K: 5})
	if err != nil {
		fmt.Println(err)
		return
	}
	resp, _ := mw.Request(forecache.Coord{})
	fmt.Println("first request hit:", resp.Hit)
	fmt.Println("prefetched after it:", len(resp.Prefetched) > 0)
	// Output:
	// first request hit: false
	// prefetched after it: true
}

// ExampleCoord shows the tile addressing scheme: every tile has four
// children one zoom level deeper (paper §2.3).
func ExampleCoord() {
	c := forecache.Coord{Level: 1, Y: 0, X: 1}
	fmt.Println(c)
	fmt.Println(c.Child(tile.SE))
	fmt.Println(c.Child(tile.SE).Parent() == c)
	// Output:
	// L1/0/1
	// L2/1/3
	// true
}

// ExampleChain demonstrates the Kneser–Ney Markov chain behind the
// Actions-Based recommender.
func ExampleChain() {
	chain, _ := markov.New(3)
	chain.Train([][]string{
		{"in", "in", "in", "in", "out"},
		{"in", "in", "in", "in", "out"},
	})
	top := chain.Predict([]string{"in", "in", "in"})[0]
	fmt.Println(top.Symbol)
	// Output:
	// in
}

// ExampleChiSquared shows the signature distance used by Algorithm 3.
func ExampleChiSquared() {
	snowy := []float64{0, 0.2, 0.8}
	alsoSnowy := []float64{0, 0.3, 0.7}
	bare := []float64{0.9, 0.1, 0}
	fmt.Println(sig.ChiSquared(snowy, alsoSnowy) < sig.ChiSquared(snowy, bare))
	// Output:
	// true
}
