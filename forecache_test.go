package forecache

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"forecache/internal/array"
	"forecache/internal/client"
	"forecache/internal/sig"
	"forecache/internal/tile"
)

var (
	worldOnce sync.Once
	world     *Dataset
	worldTr   []*Trace
)

func testWorld(t testing.TB) (*Dataset, []*Trace) {
	worldOnce.Do(func() {
		ds, err := BuildWorld(WorldConfig{Seed: 3, Size: 256, TileSize: 16})
		if err != nil {
			t.Fatalf("BuildWorld: %v", err)
		}
		world = ds
		worldTr = ds.SimulateStudy(5)
	})
	if world == nil {
		t.Fatal("world unavailable")
	}
	return world, worldTr
}

func TestBuildWorldPipeline(t *testing.T) {
	ds, traces := testWorld(t)
	if ds.Pyramid.NumLevels() != 5 {
		t.Errorf("levels = %d, want 5 for 256/16", ds.Pyramid.NumLevels())
	}
	if !ds.Signatures.CodebookTrained() {
		t.Error("codebook should be trained")
	}
	// Every tile must carry all four signatures.
	tl, err := ds.Pyramid.Tile(Coord{Level: 2, Y: 1, X: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sig.AllNames() {
		if tl.Signatures[name] == nil {
			t.Errorf("tile missing signature %q", name)
		}
	}
	if len(traces) != 54 {
		t.Errorf("study traces = %d, want 54", len(traces))
	}
	// The NDSI array must be registered in the database.
	if _, err := ds.DB.Get("NDSI"); err != nil {
		t.Errorf("NDSI not in database: %v", err)
	}
}

func TestNewMiddlewareEndToEnd(t *testing.T) {
	ds, traces := testWorld(t)
	mw, err := ds.NewMiddleware(traces, MiddlewareConfig{K: 5})
	if err != nil {
		t.Fatalf("NewMiddleware: %v", err)
	}
	resp, err := mw.Request(Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Hit {
		t.Error("cold cache should miss")
	}
	if resp.Phase == 0 {
		t.Error("hybrid middleware should classify the phase")
	}
	if len(resp.Prefetched) == 0 {
		t.Error("middleware should prefetch")
	}
	// Walk a short zoom chain; at least one of the following requests
	// should be served from cache given K=5 covers 5 of at most 9 moves.
	hits := 0
	cur := Coord{}
	for i := 0; i < 3; i++ {
		cur = cur.Child(tile.NW)
		r, err := mw.Request(cur)
		if err != nil {
			t.Fatal(err)
		}
		if r.Hit {
			hits++
		}
	}
	st := mw.CacheStats()
	if st.Hits != hits || st.Hits+st.Misses != 4 {
		t.Errorf("stats = %+v, loop hits = %d", st, hits)
	}
}

func TestBuildPyramidGenericDataset(t *testing.T) {
	// A non-MODIS array (heart-rate-like ramp) through the generic route.
	a := array.NewZero(array.Schema{
		Name:  "HR",
		Attrs: []string{"bpm"},
		Dims:  [2]array.Dim{{Name: "day", Size: 64}, {Name: "minute", Size: 64}},
	})
	data, _ := a.AttrData("bpm")
	for i := range data {
		data[i] = 60 + float64(i%40)
	}
	cfg := sig.DefaultConfig("bpm")
	cfg.ValueMin, cfg.ValueMax = 40, 160
	ds, err := BuildPyramid(a, 16, cfg, 20)
	if err != nil {
		t.Fatalf("BuildPyramid: %v", err)
	}
	if ds.Pyramid.NumLevels() != 3 {
		t.Errorf("levels = %d, want 3", ds.Pyramid.NumLevels())
	}
	if ds.Attr != "bpm" {
		t.Errorf("attr = %q", ds.Attr)
	}
}

func TestHarnessFromDataset(t *testing.T) {
	ds, traces := testWorld(t)
	h := ds.Harness(traces)
	if h.Pyr != ds.Pyramid || len(h.Traces) != len(traces) {
		t.Error("harness wiring wrong")
	}
}

func TestWorldDeterminism(t *testing.T) {
	a, err := BuildWorld(WorldConfig{Seed: 11, Size: 128, TileSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWorld(WorldConfig{Seed: 11, Size: 128, TileSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.Pyramid.Tile(Coord{Level: 2, Y: 1, X: 2})
	tb, _ := b.Pyramid.Tile(Coord{Level: 2, Y: 1, X: 2})
	for name, sa := range ta.Signatures {
		sb := tb.Signatures[name]
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("signature %s differs across identical builds", name)
			}
		}
	}
}

func TestAsyncServerFacade(t *testing.T) {
	ds, traces := testWorld(t)
	srv, err := ds.NewServer(traces, MiddlewareConfig{
		K: 5, AsyncPrefetch: true, PrefetchWorkers: 4,
		SharedTiles: 64, MaxSessions: 8, SessionTTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Two analysts walk the same path through one shared scheduler.
	walk := []Coord{{}, {Level: 1}, {Level: 2}}
	for _, session := range []string{"alice", "bob"} {
		c := client.New(ts.URL, session)
		for _, coord := range walk {
			if _, _, err := c.Tile(coord); err != nil {
				t.Fatalf("%s: %v", session, err)
			}
		}
	}
	sched := srv.Scheduler()
	if sched == nil {
		t.Fatal("async server should expose its scheduler")
	}
	sched.Drain()
	st := sched.Stats()
	if st.Queued == 0 || st.Completed == 0 {
		t.Errorf("scheduler never ran: %+v", st)
	}
	if st.Pending != 0 || st.Inflight != 0 {
		t.Errorf("scheduler not drained: %+v", st)
	}
	if srv.Sessions() != 2 {
		t.Errorf("sessions = %d, want 2", srv.Sessions())
	}
}

// TestShardedServerFacade proves the Shards knob wires the whole sharded
// deployment: sessions route to consistent-hash shards, engines bind to
// their home scheduler shard, the learned loops stay deployment-wide,
// and /stats aggregates across shards.
func TestShardedServerFacade(t *testing.T) {
	ds, traces := testWorld(t)
	srv, err := ds.NewServer(traces, MiddlewareConfig{
		K: 5, AsyncPrefetch: true, Shards: 4, PrefetchWorkers: 4,
		UtilityLearning: true, AdaptiveAllocation: true, Hotspot: true,
		MetricsEndpoint: true, SharedTiles: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if srv.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", srv.NumShards())
	}

	walk := []Coord{{}, {Level: 1}, {Level: 2}}
	const fleet = 12
	for i := 0; i < fleet; i++ {
		c := client.New(ts.URL, fmt.Sprintf("analyst-%d", i))
		for _, coord := range walk {
			if _, _, err := c.Tile(coord); err != nil {
				t.Fatalf("analyst %d: %v", i, err)
			}
		}
	}
	sched, ok := srv.Scheduler().(*ShardedScheduler)
	if !ok {
		t.Fatalf("Scheduler() = %T, want *ShardedScheduler", srv.Scheduler())
	}
	sched.Drain()
	st := sched.Stats()
	if st.Shards != 4 {
		t.Errorf("scheduler stats Shards = %d, want 4", st.Shards)
	}
	if st.Queued == 0 || st.Completed == 0 {
		t.Errorf("sharded scheduler never ran: %+v", st)
	}
	// The fleet spread over more than one shard, on both tiers.
	stats, err := client.New(ts.URL, "analyst-0").Stats()
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := stats["shard_sessions"].([]any)
	if !ok {
		t.Fatalf("/stats shard_sessions missing: %v", stats)
	}
	nonzero, sum := 0, 0
	for _, v := range raw {
		n := int(v.(float64))
		sum += n
		if n > 0 {
			nonzero++
		}
	}
	if sum != fleet {
		t.Errorf("shard_sessions sums to %d, want %d", sum, fleet)
	}
	if nonzero < 2 {
		t.Errorf("%d sessions landed on %d shard(s), want spread over at least 2", fleet, nonzero)
	}
	// Learned state is deployment-wide: one utility curve fed by every
	// shard's outcomes.
	if st.UtilityObservations == 0 {
		t.Error("deployment-wide feedback collector saw no outcomes from the sharded fleet")
	}
}

// TestTracingServerFacade proves the Tracing/TraceBuffer/Pprof knobs wire
// the observability pipeline end to end: traced tile responses carry
// X-Trace-ID, /debug/traces serves the per-span breakdowns, /metrics
// grows the latency histogram families, and /debug/pprof/ answers.
func TestTracingServerFacade(t *testing.T) {
	ds, traces := testWorld(t)
	srv, err := ds.NewServer(traces, MiddlewareConfig{
		K: 5, AsyncPrefetch: true, PrefetchWorkers: 2,
		MetricsEndpoint: true, Tracing: true, TraceBuffer: 8, Pprof: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	// A zoom-in walk: every request must come back with a trace id.
	for i, path := range []string{
		"/tile?level=0&y=0&x=0&session=tracer",
		"/tile?level=1&y=0&x=0&session=tracer",
		"/tile?level=2&y=0&x=0&session=tracer",
	} {
		code, _, hdr := get(path)
		if code != 200 {
			t.Fatalf("tile %d: status %d", i, code)
		}
		if hdr.Get("X-Trace-ID") == "" {
			t.Fatalf("tile %d: no X-Trace-ID", i)
		}
	}
	srv.Scheduler().Drain()

	code, body, _ := get("/debug/traces?n=8")
	if code != 200 {
		t.Fatalf("/debug/traces: status %d", code)
	}
	var dbg struct {
		Capacity int `json:"capacity"`
		Stored   int `json:"stored"`
		Traces   []struct {
			Outcome string `json:"outcome"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &dbg); err != nil {
		t.Fatalf("decode /debug/traces: %v", err)
	}
	if dbg.Capacity != 8 || dbg.Stored != 3 {
		t.Errorf("trace buffer = cap %d stored %d, want cap 8 stored 3", dbg.Capacity, dbg.Stored)
	}
	spanNames := map[string]bool{}
	for _, tr := range dbg.Traces {
		if tr.Outcome != "hit" && tr.Outcome != "miss" {
			t.Errorf("served request traced as %q, want hit or miss", tr.Outcome)
		}
		for _, sp := range tr.Spans {
			spanNames[sp.Name] = true
		}
	}
	// The cold first request misses, so the backend-fetch span must appear
	// somewhere even if prefetching turns the rest of the walk into hits.
	for _, want := range []string{"session", "cache_lookup", "backend_fetch", "prefetch"} {
		if !spanNames[want] {
			t.Errorf("no %q span across traces (got %v)", want, spanNames)
		}
	}

	code, body, _ = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, family := range []string{
		"forecache_request_duration_seconds",
		"forecache_prefetch_queue_wait_seconds",
		"forecache_backend_fetch_duration_seconds",
		"forecache_prefetch_lead_time_seconds",
	} {
		if !strings.Contains(body, "# TYPE "+family+" histogram") {
			t.Errorf("/metrics missing histogram family %s", family)
		}
	}
	// Every request of the walk lands in exactly one outcome's histogram.
	total := 0.0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `forecache_request_duration_seconds_count{outcome="`) {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			total += v
		}
	}
	if total != 3 {
		t.Errorf("request histogram counts sum to %v, want 3", total)
	}

	if code, _, _ = get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: status %d, want 200", code)
	}
}

// replayStudy replays the first n study traces through a server (one
// session per trace, scheduler drained after every request so async
// deliveries are deterministic) and reports hits and total requests.
func replayStudy(t *testing.T, srv *Server, ts *httptest.Server, traces []*Trace, n int) (hits, total int) {
	t.Helper()
	sched := srv.Scheduler()
	for i, tr := range traces[:n] {
		c := client.New(ts.URL, fmt.Sprintf("trace-%d", i))
		for _, req := range tr.Requests {
			_, info, err := c.Tile(req.Coord)
			if err != nil {
				t.Fatalf("trace %d request %v: %v", i, req.Coord, err)
			}
			total++
			if info.Hit {
				hits++
			}
			if sched != nil {
				sched.Drain()
			}
		}
	}
	return hits, total
}

// TestUtilityLearningConvergence closes the acceptance loop on the eval
// traces: with UtilityLearning enabled the position-utility curve is fit
// from real cache outcomes (converging away from the static 0.85^p guess,
// monotone, exported identically via /metrics), and the overall cache hit
// rate is no worse than the static-decay baseline's on the same replay.
func TestUtilityLearningConvergence(t *testing.T) {
	ds, traces := testWorld(t)
	const nTraces = 6
	run := func(learning bool) (hitRate float64, st PrefetchStats, metricsBody string) {
		srv, err := ds.NewServer(traces, MiddlewareConfig{
			K: 5, AsyncPrefetch: true, PrefetchWorkers: 4,
			AdaptiveK: true, FairShare: true,
			UtilityLearning: learning, MetricsEndpoint: true,
			SharedTiles: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		hits, total := replayStudy(t, srv, ts, traces, nTraces)
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body strings.Builder
		if _, err := io.Copy(&body, resp.Body); err != nil {
			t.Fatal(err)
		}
		return float64(hits) / float64(total), srv.Scheduler().Stats(), body.String()
	}

	baseRate, baseStats, _ := run(false)
	if baseStats.UtilityCurve != nil || baseStats.UtilityObservations != 0 {
		t.Errorf("baseline should have no learned curve: %+v", baseStats.UtilityCurve)
	}

	learnedRate, learnedStats, metrics := run(true)

	// Acceptance: learned hit rate >= the static-0.85 baseline.
	if learnedRate < baseRate {
		t.Errorf("learned hit rate %.4f < static baseline %.4f", learnedRate, baseRate)
	}

	// The curve converged: fit from hundreds of outcomes, anchored at 1,
	// monotone non-increasing, and no longer the static guess.
	curve := learnedStats.UtilityCurve
	if len(curve) != 5 {
		t.Fatalf("learned curve = %v, want 5 positions (K=5)", curve)
	}
	if learnedStats.UtilityObservations < 150 {
		t.Errorf("only %d observations; replay should produce >= 150", learnedStats.UtilityObservations)
	}
	if curve[0] != 1 {
		t.Errorf("curve[0] = %v, want 1", curve[0])
	}
	diverged := false
	for p := 1; p < len(curve); p++ {
		if curve[p] > curve[p-1]+1e-12 {
			t.Errorf("curve not monotone at %d: %v", p, curve)
		}
		if curve[p] <= 0 || curve[p] > 1 {
			t.Errorf("curve[%d] = %v outside (0,1]", p, curve[p])
		}
		if diff := curve[p] - math.Pow(0.85, float64(p)); math.Abs(diff) > 0.02 {
			diverged = true
		}
	}
	if !diverged {
		t.Errorf("curve %v never diverged from the static guess; learning is not wired", curve)
	}

	// /metrics exports the same converged curve, point for point.
	for p, f := range curve {
		want := fmt.Sprintf(`forecache_utility_position_factor{position="%d"} %s`,
			p, strconv.FormatFloat(f, 'g', -1, 64))
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, "forecache_utility_observations_total") ||
		!strings.Contains(metrics, "forecache_prefetch_session_pressure") {
		t.Error("/metrics missing utility/fair-share families")
	}
}

func TestSyncServerFacadeHasNoScheduler(t *testing.T) {
	ds, traces := testWorld(t)
	srv, err := ds.NewServer(traces, MiddlewareConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Scheduler() != nil {
		t.Error("synchronous server should not build a scheduler")
	}
}

// TestServerTrainsModelsOnce: the phase classifier and the Markov chain are
// trained exactly once per server, at construction — creating the 2nd..Nth
// session performs zero training (the counting hook would fire again).
func TestServerTrainsModelsOnce(t *testing.T) {
	ds, traces := testWorld(t)
	var trainings atomic.Int32
	trainHook = func(string) { trainings.Add(1) }
	defer func() { trainHook = nil }()

	srv, err := ds.NewServer(traces, MiddlewareConfig{K: 5, AsyncPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	afterBuild := trainings.Load()
	if afterBuild != 2 { // one Markov chain + one classifier
		t.Fatalf("server construction trained %d artifacts, want 2", afterBuild)
	}

	ts := httptest.NewServer(srv)
	defer ts.Close()
	for i := 0; i < 5; i++ {
		c := client.New(ts.URL, fmt.Sprintf("analyst-%d", i))
		for _, coord := range []Coord{{}, {Level: 1}} {
			if _, _, err := c.Tile(coord); err != nil {
				t.Fatalf("analyst-%d: %v", i, err)
			}
		}
	}
	if srv.Sessions() != 5 {
		t.Fatalf("sessions = %d, want 5", srv.Sessions())
	}
	if got := trainings.Load(); got != afterBuild {
		t.Errorf("sessions 1..5 trained %d extra artifacts, want 0 (train once, share everywhere)",
			got-afterBuild)
	}
}

// TestNewMiddlewareStillTrainsPerCall: the synchronous facade keeps its
// per-call training semantics (the eval harness depends on fresh models).
func TestNewMiddlewareStillTrainsPerCall(t *testing.T) {
	ds, traces := testWorld(t)
	var trainings atomic.Int32
	trainHook = func(string) { trainings.Add(1) }
	defer func() { trainHook = nil }()
	for i := 0; i < 2; i++ {
		if _, err := ds.NewMiddleware(traces, MiddlewareConfig{K: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if got := trainings.Load(); got != 4 {
		t.Errorf("two NewMiddleware calls trained %d artifacts, want 4", got)
	}
}

// TestAdaptiveServerFacade wires the whole adaptive stack through the
// facade: global budget, decay and adaptive K reach the scheduler, and
// /stats reports the pressure signal.
func TestAdaptiveServerFacade(t *testing.T) {
	ds, traces := testWorld(t)
	srv, err := ds.NewServer(traces, MiddlewareConfig{
		K:                 5,
		AsyncPrefetch:     true,
		GlobalQueueBudget: 16,
		DecayHalfLife:     time.Second,
		AdaptiveK:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := client.New(ts.URL, "alice")
	for _, coord := range []Coord{{}, {Level: 1}} {
		if _, _, err := c.Tile(coord); err != nil {
			t.Fatal(err)
		}
	}
	sched := srv.Scheduler()
	sched.Drain()
	if p := sched.Pressure(); p != 0 {
		t.Errorf("drained pressure = %v, want 0", p)
	}
	st := sched.Stats()
	if st.PeakPending > 16 {
		t.Errorf("PeakPending = %d, global budget 16 exceeded", st.PeakPending)
	}
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if _, ok := out["pressure"]; !ok {
		t.Error("/stats missing pressure")
	}
}

// TestSharedArtifactsSkipTraining: a bundle from Dataset.Train supplied
// via MiddlewareConfig.Artifacts makes both NewMiddleware and NewServer
// construction train nothing at all — the registry's shared-artifact path.
func TestSharedArtifactsSkipTraining(t *testing.T) {
	ds, traces := testWorld(t)
	var trainings atomic.Int32
	trainHook = func(string) { trainings.Add(1) }
	defer func() { trainHook = nil }()

	cfg := MiddlewareConfig{K: 5, Hotspot: true}
	arts, err := ds.Train(traces, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := trainings.Load(); got != 2 { // markov3 + classifier
		t.Fatalf("Train trained %d artifacts, want 2", got)
	}
	if models := arts.Models(); len(models) != 3 {
		t.Fatalf("artifact models = %v, want 3 (hotspot registered)", models)
	}

	cfg.Artifacts = arts
	for i := 0; i < 2; i++ {
		mw, err := ds.NewMiddleware(traces, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mw.Request(Coord{}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := ds.NewServer(traces, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if got := trainings.Load(); got != 2 {
		t.Errorf("constructions with supplied artifacts trained %d extra artifacts, want 0", got-2)
	}

	// A bundle whose model shape disagrees with the config (trained
	// without the hotspot, config asks for it — or a different Markov
	// order) must be rejected, not silently served.
	mismatch := cfg
	mismatch.Hotspot = false
	if _, err := ds.NewMiddleware(traces, mismatch); err == nil {
		t.Error("NewMiddleware should reject artifacts whose model set mismatches the config")
	}
	if srv, err := ds.NewServer(traces, mismatch); err == nil {
		srv.Close()
		t.Error("NewServer should reject artifacts whose model set mismatches the config")
	}
	order := cfg
	order.ABOrder = 2
	if _, err := ds.NewMiddleware(traces, order); err == nil {
		t.Error("NewMiddleware should reject artifacts trained at a different Markov order")
	}
}

// TestMiddlewareConfigValidation: out-of-range allocation tuning is a
// construction error on both facade entry points, and in-range values
// reach the adaptive policy.
func TestMiddlewareConfigValidation(t *testing.T) {
	ds, traces := testWorld(t)
	bad := []MiddlewareConfig{
		{K: 5, AllocationFloor: -0.5},
		{K: 5, AllocationFloor: 1.5},
		{K: 5, AllocationWarmup: -1},
		{K: 5, AllocationMaxStep: 2},
		{K: 5, AllocationMaxStep: -0.1},
	}
	for _, cfg := range bad {
		if _, err := ds.NewMiddleware(traces, cfg); err == nil {
			t.Errorf("NewMiddleware(%+v) should reject out-of-range tuning", cfg)
		}
		if srv, err := ds.NewServer(traces, cfg); err == nil {
			srv.Close()
			t.Errorf("NewServer(%+v) should reject out-of-range tuning", cfg)
		}
	}
	srv, err := ds.NewServer(traces, MiddlewareConfig{
		K: 5, AdaptiveAllocation: true,
		AllocationFloor: 0.05, AllocationWarmup: 10, AllocationMaxStep: 0.1,
	})
	if err != nil {
		t.Fatalf("in-range tuning rejected: %v", err)
	}
	srv.Close()
}

// TestHotspotServerLearnsConsumption: with Hotspot on, one session's
// consumption is visible to another session's predictions through the
// shared table (the cross-session loop, end to end over HTTP).
func TestHotspotServerLearnsConsumption(t *testing.T) {
	ds, traces := testWorld(t)
	srv, err := ds.NewServer(traces, MiddlewareConfig{
		K: 5, AsyncPrefetch: true, PrefetchWorkers: 4, Hotspot: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	walk := []Coord{{}, {Level: 1}, {Level: 2}, {Level: 1}, {}}
	for _, session := range []string{"alice", "bob"} {
		c := client.New(ts.URL, session)
		for _, coord := range walk {
			if _, _, err := c.Tile(coord); err != nil {
				t.Fatalf("%s: %v", session, err)
			}
			srv.Scheduler().Drain()
		}
	}
	// Both engines exist and served; the deployment ran 3 models per
	// session without error. (The shared-table unit behavior is pinned in
	// internal/recommend; here we assert the full stack stays healthy.)
	if srv.Sessions() != 2 {
		t.Fatalf("sessions = %d, want 2", srv.Sessions())
	}
}

// TestBinaryTilesFacade proves the BinaryTiles knob wires the whole
// zero-copy serving stack: the deployment-wide encoded cache feeds both
// /tile negotiation and push payloads, a binary-negotiating client sees
// exactly the tiles a default JSON client sees, and the encoded-cache
// metric families reach /metrics.
func TestBinaryTilesFacade(t *testing.T) {
	ds, traces := testWorld(t)
	srv, err := ds.NewServer(traces, MiddlewareConfig{
		K: 5, AsyncPrefetch: true, Push: true,
		BinaryTiles: true, MetricsEndpoint: true, Tracing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	walk := []Coord{{}, {Level: 1}, {Level: 2}}
	jc := client.New(ts.URL, "json-analyst")
	bc := client.New(ts.URL, "bin-analyst")
	bc.NegotiateBinary(true)
	for _, coord := range walk {
		jt, _, err := jc.Tile(coord)
		if err != nil {
			t.Fatalf("json client %v: %v", coord, err)
		}
		bt, _, err := bc.Tile(coord)
		if err != nil {
			t.Fatalf("binary client %v: %v", coord, err)
		}
		if bt.Coord != jt.Coord || bt.Size != jt.Size || len(bt.Data) != len(jt.Data) {
			t.Fatalf("%v: binary tile %+v != json tile %+v", coord, bt, jt)
		}
		for a := range jt.Data {
			for i := range jt.Data[a] {
				jb := math.Float64bits(jt.Data[a][i])
				bb := math.Float64bits(bt.Data[a][i])
				if jb != bb {
					t.Fatalf("%v attr %d cell %d: %x != %x", coord, a, i, bb, jb)
				}
			}
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"forecache_tile_encode_cache_hits_total",
		"forecache_tile_encode_misses_total",
		"forecache_tile_encode_duration_seconds_bucket",
		"forecache_tile_response_bytes_bucket",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("metrics exposition missing %s", family)
		}
	}
}
