package forecache

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// allocFloor / allocPrior mirror core.AdaptiveConfig's defaults (Floor 0.1)
// and the §5.4.3 hybrid prior at K=5 the replay asserts divergence from.
const allocFloor = 0.1

func hybridPriorShare(phase, model string) float64 {
	// HybridPolicy at k=5: Sensemaking all to SB; other phases 4/5 AB, 1/5 SB.
	if phase == "Sensemaking" {
		if model == "sb:sift" {
			return 1
		}
		return 0
	}
	if model == "markov3" {
		return 0.8
	}
	return 0.2
}

// TestAdaptiveAllocationReplay is the trace-replay regression suite for
// feedback-driven allocation: the same 12 study traces are replayed
// deterministically (seeded world, scheduler drained per request) under the
// static §5.4.3 table and under AdaptiveAllocation, asserting that
//
//  1. the adaptive hit rate is no worse than the static baseline's (within
//     epsilon),
//  2. the learned shares converged away from the static prior, and
//  3. no model was starved below the exploration floor in any phase,
//
// and that /stats and /metrics export the same converged shares.
func TestAdaptiveAllocationReplay(t *testing.T) {
	ds, traces := testWorld(t)
	const nTraces = 12
	run := func(adaptive, hotspot bool) (hitRate float64, alloc map[string]map[string]float64, metricsBody string) {
		srv, err := ds.NewServer(traces, MiddlewareConfig{
			K: 5, AsyncPrefetch: true, PrefetchWorkers: 4,
			UtilityLearning: true, AdaptiveAllocation: adaptive,
			Hotspot:         hotspot,
			MetricsEndpoint: true, SharedTiles: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		hits, total := replayStudy(t, srv, ts, traces, nTraces)

		resp, err := ts.Client().Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats struct {
			Allocation map[string]map[string]float64 `json:"allocation"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		mresp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer mresp.Body.Close()
		var body strings.Builder
		if _, err := io.Copy(&body, mresp.Body); err != nil {
			t.Fatal(err)
		}
		return float64(hits) / float64(total), stats.Allocation, body.String()
	}

	staticRate, staticAlloc, staticMetrics := run(false, false)
	if staticAlloc != nil {
		t.Errorf("static baseline should export no allocation shares: %v", staticAlloc)
	}
	if strings.Contains(staticMetrics, "forecache_allocation_share") {
		t.Error("static baseline /metrics should not export allocation shares")
	}

	adaptiveRate, alloc, metrics := run(true, false)
	t.Logf("hit rate: static %.4f adaptive %.4f; shares %v", staticRate, adaptiveRate, alloc)

	// 1. Acceptance: adaptive allocation is no worse than the tuned static
	// table on the study traces (epsilon absorbs the exploration floor's
	// cost of keeping the losing model alive).
	const epsilon = 0.02
	if adaptiveRate < staticRate-epsilon {
		t.Errorf("adaptive hit rate %.4f < static %.4f - %.2f", adaptiveRate, staticRate, epsilon)
	}

	// 2. The shares converged away from the static prior: every phase saw
	// enough traffic on 12 traces to warm up and move.
	if len(alloc) != 3 {
		t.Fatalf("allocation shares cover %d phases, want all 3: %v", len(alloc), alloc)
	}
	diverged := 0
	for phase, byModel := range alloc {
		if len(byModel) != 2 {
			t.Errorf("phase %s has %d models, want 2: %v", phase, len(byModel), byModel)
		}
		sum := 0.0
		for model, share := range byModel {
			sum += share
			if math.Abs(share-hybridPriorShare(phase, model)) > 0.02 {
				diverged++
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("phase %s shares sum to %v: %v", phase, sum, byModel)
		}
	}
	if diverged == 0 {
		t.Errorf("no share diverged from the static prior; the loop is not learning: %v", alloc)
	}

	// 3. The exploration floor held everywhere: no model starved to zero in
	// any phase — including the model the static table gives 0 slots.
	for phase, byModel := range alloc {
		for model, share := range byModel {
			if share < allocFloor-1e-9 {
				t.Errorf("phase %s model %s share %.4f below floor %.2f", phase, model, share, allocFloor)
			}
		}
	}

	// /metrics exports the same converged shares, point for point.
	for phase, byModel := range alloc {
		for model, share := range byModel {
			want := fmt.Sprintf(`forecache_allocation_share{model="%s",phase="%s"} %s`,
				model, phase, strconv.FormatFloat(share, 'g', -1, 64))
			if !strings.Contains(metrics, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
	}

	// ---- The 3-model configuration (-hotspot -adaptive-allocation): the
	// registry's third column makes the learned split genuinely 3-way.
	triRate, triAlloc, triMetrics := run(true, true)
	t.Logf("3-way hit rate: %.4f (2-way static %.4f, adaptive %.4f); shares %v",
		triRate, staticRate, adaptiveRate, triAlloc)

	// Acceptance: the 3-way replay is no worse than either 2-way run
	// (within epsilon: the hotspot's exploration slots have a cost before
	// its table warms).
	if triRate < staticRate-epsilon {
		t.Errorf("3-way hit rate %.4f < 2-way static %.4f - %.2f", triRate, staticRate, epsilon)
	}
	if triRate < adaptiveRate-epsilon {
		t.Errorf("3-way hit rate %.4f < 2-way adaptive %.4f - %.2f", triRate, adaptiveRate, epsilon)
	}

	// Every phase carries exactly the three registered models, shares sum
	// to 1, and the floor holds for all of them.
	if len(triAlloc) != 3 {
		t.Fatalf("3-way shares cover %d phases, want 3: %v", len(triAlloc), triAlloc)
	}
	models := map[string]bool{"markov3": true, "sb:sift": true, "hotspot": true}
	for phase, byModel := range triAlloc {
		if len(byModel) != 3 {
			t.Errorf("phase %s has %d models, want 3: %v", phase, len(byModel), byModel)
		}
		sum := 0.0
		for model, share := range byModel {
			if !models[model] {
				t.Errorf("phase %s has unregistered model %q", phase, model)
			}
			sum += share
			if share < allocFloor-1e-9 {
				t.Errorf("phase %s model %s share %.4f below floor %.2f", phase, model, share, allocFloor)
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("phase %s shares sum to %v: %v", phase, sum, byModel)
		}
	}

	// Every model earns a non-floor share in at least one phase: the split
	// is genuinely 3-way, not two real models plus a floor-pinned third.
	for model := range models {
		best := 0.0
		for _, byModel := range triAlloc {
			if byModel[model] > best {
				best = byModel[model]
			}
		}
		if best <= allocFloor+0.02 {
			t.Errorf("model %s never rose above the floor (best share %.4f): not a 3-way split", model, best)
		}
	}

	// /stats and /metrics agree point for point on the 3-way shares.
	for phase, byModel := range triAlloc {
		for model, share := range byModel {
			want := fmt.Sprintf(`forecache_allocation_share{model="%s",phase="%s"} %s`,
				model, phase, strconv.FormatFloat(share, 'g', -1, 64))
			if !strings.Contains(triMetrics, want) {
				t.Errorf("3-way /metrics missing %q", want)
			}
		}
	}
}
