package forecache

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"forecache/internal/client"
	"forecache/internal/persist"
)

// replayTraces replays each trace in its own fresh session (named by
// prefix so warmup and measurement sessions never collide) and returns
// the cache outcome counts. Drain after every request keeps async
// prefetch deterministic, as in replayStudy.
func replayTraces(t *testing.T, srv *Server, ts *httptest.Server, traces []*Trace, prefix string) (hits, total int) {
	t.Helper()
	sched := srv.Scheduler()
	for i, tr := range traces {
		c := client.New(ts.URL, fmt.Sprintf("%s-%d", prefix, i))
		for _, req := range tr.Requests {
			_, info, err := c.Tile(req.Coord)
			if err != nil {
				t.Fatalf("%s trace %d request %v: %v", prefix, i, req.Coord, err)
			}
			total++
			if info.Hit {
				hits++
			}
			if sched != nil {
				sched.Drain()
			}
		}
	}
	return hits, total
}

// TestWarmRestartMatchesUninterruptedRun is the issue's acceptance test
// for the snapshot/restore tentpole. Four deployments over the same world:
//
//	A  never restarts: warmup traces, then measurement traces
//	B  runs only the warmup, then Close (final snapshot to StateDir)
//	C  boots from B's snapshot and runs only the measurement traces
//	D  cold-starts and runs only the measurement traces
//
// C's measurement hit rate must match A's within 0.01 (restore is
// faithful: the learned state resumes where the snapshot left it) and
// beat D's (the warmup was worth carrying across the restart).
func TestWarmRestartMatchesUninterruptedRun(t *testing.T) {
	ds, traces := testWorld(t)
	// RunStudy orders traces user-major (user u's three tasks sit at
	// 3u..3u+2). Warmup and measurement both draw task-3 traces — the
	// paper's pan-heavy task, where users sweep the same target regions —
	// so the population state learned from users 0-5 is genuinely useful
	// to users 6-9: the cross-user transfer a warm restart preserves.
	taskTraces := func(users ...int) []*Trace {
		out := make([]*Trace, 0, len(users))
		for _, u := range users {
			out = append(out, traces[3*u+2])
		}
		return out
	}
	warmup := taskTraces(0, 1, 2, 3, 4, 5)
	meas := taskTraces(6, 7, 8, 9)

	// All three learned-state families are live: the feedback collector
	// (UtilityLearning + AdaptiveAllocation), the adaptive policy and the
	// hotspot counter table.
	mkServer := func(stateDir string) (*Server, *httptest.Server) {
		srv, err := ds.NewServer(traces, MiddlewareConfig{
			K: 5, AsyncPrefetch: true, PrefetchWorkers: 4,
			UtilityLearning: true, AdaptiveAllocation: true, Hotspot: true,
			StateDir: stateDir, SnapshotInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		return srv, ts
	}
	rate := func(hits, total int) float64 { return float64(hits) / float64(total) }

	// A: the uninterrupted run.
	srvA, tsA := mkServer("")
	replayTraces(t, srvA, tsA, warmup, "warm-a")
	aHits, aTotal := replayTraces(t, srvA, tsA, meas, "meas-a")
	tsA.Close()
	srvA.Close()

	// B: warmup only, then a clean shutdown that flushes the snapshot.
	dir := t.TempDir()
	srvB, tsB := mkServer(dir)
	replayTraces(t, srvB, tsB, warmup, "warm-b")
	tsB.Close()
	srvB.Close()
	if _, err := os.Stat(filepath.Join(dir, persist.FileName)); err != nil {
		t.Fatalf("shutdown left no snapshot: %v", err)
	}

	// C: the warm restart.
	srvC, tsC := mkServer(dir)
	cHits, cTotal := replayTraces(t, srvC, tsC, meas, "meas-c")
	tsC.Close()
	srvC.Close()

	// D: the cold restart C is supposed to beat.
	srvD, tsD := mkServer("")
	dHits, dTotal := replayTraces(t, srvD, tsD, meas, "meas-d")
	tsD.Close()
	srvD.Close()

	aRate, cRate, dRate := rate(aHits, aTotal), rate(cHits, cTotal), rate(dHits, dTotal)
	t.Logf("uninterrupted %.4f, warm restart %.4f, cold restart %.4f", aRate, cRate, dRate)
	if diff := cRate - aRate; diff > 0.01 || diff < -0.01 {
		t.Errorf("warm restart hit rate %.4f differs from uninterrupted %.4f by %.4f (> 0.01)",
			cRate, aRate, diff)
	}
	if cRate <= dRate {
		t.Errorf("warm restart hit rate %.4f does not beat cold restart %.4f", cRate, dRate)
	}
}
